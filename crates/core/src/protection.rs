//! Scheme protectors: GEMM hooks that detect errors and trigger recovery during inference.
//!
//! A [`SchemeProtector`] is the runtime embodiment of a protection scheme: attached after the
//! error injector in the hook chain, it sees the (possibly corrupted) INT32 accumulator of
//! every quantized GEMM, runs the scheme's detector, restores the correct result when a
//! recovery is triggered (the operands are fault-free, so recomputation is exact — exactly
//! the paper's "recompute at nominal voltage" assumption) and charges the recovery cost.

use realm_abft::{
    approx::ApproxAbft, checksum, classical::ClassicalAbft, critical_region::CriticalRegion,
    detector::AbftDetector, detector::Detection, recovery::RecoveryPolicy, recovery::RecoveryStats,
    statistical::StatisticalAbft,
};
use realm_llm::{Component, GemmContext, GemmHook, GemmOrigin};
use realm_systolic::{ProtectionScheme, SystolicArray};
use realm_tensor::{engine, ChecksummedGemm, GemmEngine, MatI32, MatI8, RowPartition};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-batch-sequence detection/recovery attribution accumulated by a [`SchemeProtector`].
///
/// In a batched forward pass one inspected GEMM carries the rows of every sequence; when
/// the detector flags it, the protector re-reduces the checksums over each sequence's row
/// range (see [`realm_abft::checksum::deviating_groups`]) and charges the detection — and
/// any recovery — to the sequences whose rows actually deviated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequenceAttribution {
    /// Inspections in which this sequence's rows carried a non-zero deviation.
    pub detections: u64,
    /// Detections on this sequence's rows that triggered a recovery.
    pub recoveries: u64,
}

/// Per-tensor-parallel-shard detection/recovery attribution accumulated by a
/// [`SchemeProtector`].
///
/// When the model's linear layers are column-sharded over a TP rank group
/// (`realm_tensor::tp`), every fused checksum deviation localizes to the shard stripes
/// whose columns deviated (see [`realm_abft::checksum::deviating_shards`]); the protector
/// charges detections and recoveries to those fault domains. Enabled by
/// [`SchemeProtector::set_shard_attribution`] and only meaningful on the fused
/// (checksummed) inspection path — the two-pass path never sees per-column deviations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAttribution {
    /// Inspections in which this shard's column stripe carried a non-zero deviation.
    pub detections: u64,
    /// Detections on this shard's stripe that triggered a recovery.
    pub recoveries: u64,
}

/// Per-request protection policy: which ABFT scheme a request's GEMMs should run under.
///
/// The serving layer attaches one policy to every request. Inside a shared batch the
/// per-sequence attention GEMMs (`QKᵀ`, `SV`) are inspected under the owning request's own
/// scheme, while the batch-stacked projections — whose rows belong to several requests at
/// once — are inspected under the **strictest** scheme any active request asked for
/// (*protection escalation*: a request that asked for less protection can only ever receive
/// more, never less). See [`SchemeProtector::set_sequence_schemes`] for the wiring.
///
/// # Example
///
/// ```
/// use realm_core::protection::ProtectionPolicy;
/// use realm_systolic::ProtectionScheme;
///
/// let policy = ProtectionPolicy::default();
/// assert_eq!(policy.scheme, ProtectionScheme::StatisticalAbft);
/// assert_eq!(ProtectionPolicy::unprotected().scheme, ProtectionScheme::None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionPolicy {
    /// The detection/recovery scheme applied to this request's GEMMs.
    pub scheme: ProtectionScheme,
}

impl ProtectionPolicy {
    /// A policy running `scheme`.
    pub fn new(scheme: ProtectionScheme) -> Self {
        Self { scheme }
    }

    /// No detection, no recovery: faults flow straight into the request's tokens.
    pub fn unprotected() -> Self {
        Self::new(ProtectionScheme::None)
    }

    /// Classical ABFT: full checksum comparison, recovery on any mismatch.
    pub fn classical() -> Self {
        Self::new(ProtectionScheme::ClassicalAbft)
    }

    /// The paper's statistical ABFT (the default).
    pub fn statistical() -> Self {
        Self::new(ProtectionScheme::StatisticalAbft)
    }
}

impl Default for ProtectionPolicy {
    fn default() -> Self {
        Self::statistical()
    }
}

/// Per-component critical regions used by the statistical scheme.
///
/// Components without an explicit entry fall back to the paper's defaults: the sensitive
/// default for `O`/`FC2`/`Down` and the resilient default for everything else.
#[derive(Debug, Clone, Default)]
pub struct RegionAssignment {
    regions: BTreeMap<Component, CriticalRegion>,
}

impl RegionAssignment {
    /// Creates an empty assignment (every component uses its class default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an assignment from fitted per-component regions.
    pub fn from_regions(regions: BTreeMap<Component, CriticalRegion>) -> Self {
        Self { regions }
    }

    /// Sets the region for one component.
    pub fn set(&mut self, component: Component, region: CriticalRegion) {
        self.regions.insert(component, region);
    }

    /// The region that will be used for a component.
    pub fn region_for(&self, component: Component) -> CriticalRegion {
        self.regions.get(&component).copied().unwrap_or_else(|| {
            if component.is_sensitive() {
                CriticalRegion::sensitive_default()
            } else {
                CriticalRegion::resilient_default()
            }
        })
    }

    /// Every model component ranked most-sensitive-first by its (explicit or default)
    /// critical region, via [`realm_abft::critical_region::rank_by_sensitivity`].
    ///
    /// This is the spatial-protection order an adaptive controller uses: components at
    /// the front of the list earn a stricter scheme first and give it up last; components
    /// at the back are the first to shed protection under load.
    pub fn ranked_components(&self) -> Vec<Component> {
        let keyed: Vec<(Component, CriticalRegion)> = Component::ALL
            .iter()
            .map(|&c| (c, self.region_for(c)))
            .collect();
        realm_abft::critical_region::rank_by_sensitivity(&keyed)
    }

    /// The components whose regions exhibit sensitive behaviour (`θ_freq < 1`: any
    /// counted error triggers recovery). With default regions this is `O`, `FC2`, `Down`.
    pub fn sensitive_components(&self) -> Vec<Component> {
        Component::ALL
            .iter()
            .copied()
            .filter(|&c| self.region_for(c).is_sensitive())
            .collect()
    }

    /// Number of explicitly assigned components.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no component has an explicit region.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Reusable buffers for the protector's per-inspection work: the deviation vector every
/// detector evaluates, the per-group re-reduction buffers of batched attribution, and the
/// affected-sequence list. Owned by the protector so the detection path of the decode hot
/// loop never touches the allocator (the buffers are `std::mem::take`n around the borrow
/// of the detector, which costs nothing — `Vec::default` does not allocate).
#[derive(Debug, Default)]
struct DetectionScratch {
    deviations: Vec<i64>,
    group_etw: Vec<i64>,
    group_dev: Vec<i64>,
    affected: Vec<usize>,
    shards: Vec<usize>,
}

/// A protection scheme attached to the model's GEMM stream.
pub struct SchemeProtector {
    scheme: ProtectionScheme,
    policy: RecoveryPolicy,
    array: SystolicArray,
    classical: ClassicalAbft,
    approx: ApproxAbft,
    statistical: BTreeMap<Component, StatisticalAbft>,
    stats: RecoveryStats,
    correct_on_recovery: bool,
    engine: Arc<dyn GemmEngine>,
    partition: Option<RowPartition>,
    per_sequence: BTreeMap<usize, SequenceAttribution>,
    tp_degree: Option<usize>,
    per_shard: BTreeMap<usize, ShardAttribution>,
    sequence_schemes: Option<Vec<ProtectionScheme>>,
    batched_scheme: ProtectionScheme,
    component_schemes: BTreeMap<Component, ProtectionScheme>,
    scratch: DetectionScratch,
}

impl SchemeProtector {
    /// Creates a protector for `scheme` using per-component `regions` (only consulted by the
    /// statistical scheme) and the default recovery policy for the scheme. Recovery
    /// recomputation runs on the process-default GEMM backend; use
    /// [`SchemeProtector::with_engine`] to pin a specific one.
    pub fn new(scheme: ProtectionScheme, array: SystolicArray, regions: &RegionAssignment) -> Self {
        Self::with_engine(scheme, array, regions, engine::default_engine())
    }

    /// Creates a protector whose recovery recomputation runs on `engine`.
    ///
    /// All backends are bit-exact, so this choice affects wall-clock time only — the paper's
    /// "recompute at nominal voltage" recovery reproduces the exact accumulator either way.
    pub fn with_engine(
        scheme: ProtectionScheme,
        array: SystolicArray,
        regions: &RegionAssignment,
        engine: Arc<dyn GemmEngine>,
    ) -> Self {
        let statistical = Component::ALL
            .iter()
            .map(|&c| (c, StatisticalAbft::new(regions.region_for(c))))
            .collect();
        Self {
            scheme,
            policy: RecoveryPolicy::default_for_scheme(scheme),
            array,
            classical: ClassicalAbft::new(),
            approx: ApproxAbft::paper_default(),
            statistical,
            stats: RecoveryStats::new(),
            correct_on_recovery: true,
            engine,
            partition: None,
            per_sequence: BTreeMap::new(),
            tp_degree: None,
            per_shard: BTreeMap::new(),
            sequence_schemes: None,
            batched_scheme: scheme,
            component_schemes: BTreeMap::new(),
            scratch: DetectionScratch::default(),
        }
    }

    /// Creates a protector with default regions for every component.
    pub fn with_default_regions(scheme: ProtectionScheme, array: SystolicArray) -> Self {
        Self::new(scheme, array, &RegionAssignment::new())
    }

    /// The protection scheme this protector implements.
    pub fn scheme(&self) -> ProtectionScheme {
        self.scheme
    }

    /// The recovery policy in use.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Overrides the recovery policy (e.g. to model overvolting instead of recomputation).
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Accumulated recovery statistics.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// Per-batch-sequence detection/recovery attribution, keyed by batch sequence index.
    ///
    /// Single-sequence runs attribute everything to index 0. Sequences whose rows never
    /// deviated have no entry — a fault-free run returns an empty map.
    ///
    /// # Example
    ///
    /// ```
    /// use realm_core::SchemeProtector;
    /// use realm_llm::{config::ModelConfig, model::Model};
    /// use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};
    ///
    /// # fn main() -> Result<(), realm_llm::LlmError> {
    /// let model = Model::new(&ModelConfig::tiny_opt(), 42)?;
    /// let mut protector = SchemeProtector::with_default_regions(
    ///     ProtectionScheme::ClassicalAbft,
    ///     SystolicArray::small(Dataflow::WeightStationary),
    /// );
    /// let prompts = vec![vec![1, 2, 3], vec![4, 5]];
    /// model.prefill_batch(&prompts, &mut protector)?;
    /// // No injector in the chain: nothing deviates, nothing is charged.
    /// assert!(protector.sequence_attribution().is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn sequence_attribution(&self) -> &BTreeMap<usize, SequenceAttribution> {
        &self.per_sequence
    }

    /// Resets the accumulated statistics (including per-sequence and per-shard
    /// attribution).
    pub fn reset_stats(&mut self) {
        self.stats = RecoveryStats::new();
        self.per_sequence = BTreeMap::new();
        self.per_shard = BTreeMap::new();
    }

    /// Enables (`Some(degree)`) or disables (`None`) per-shard attribution of fused-path
    /// detections to the stripes of a `degree`-way column-sharded model.
    ///
    /// The serving and pipeline layers set this from the model's TP degree
    /// (`Model::tp_group`); it never changes detection verdicts or recovery behaviour,
    /// only the bookkeeping surfaced by [`SchemeProtector::shard_attribution`]. Degrees
    /// `0` and `1` both disable attribution (there is no sharding to attribute to).
    pub fn set_shard_attribution(&mut self, degree: Option<usize>) {
        self.tp_degree = degree.filter(|&d| d > 1);
    }

    /// Per-tensor-parallel-shard detection/recovery attribution, keyed by shard index.
    ///
    /// Empty unless [`SchemeProtector::set_shard_attribution`] enabled it and at least
    /// one fused-path detection deviated inside some shard's column stripe.
    pub fn shard_attribution(&self) -> &BTreeMap<usize, ShardAttribution> {
        &self.per_shard
    }

    /// Controls whether a triggered recovery actually restores the correct accumulator.
    ///
    /// Always `true` in normal operation; disabling it lets experiments measure "detection
    /// only" behaviour (e.g. to isolate the quality impact of skipped recoveries).
    pub fn set_correct_on_recovery(&mut self, correct: bool) {
        self.correct_on_recovery = correct;
    }

    /// Installs per-batch-sequence protection schemes (one entry per batch slot).
    ///
    /// Once set, the list defines the whole batch's protection: a GEMM tagged
    /// [`GemmOrigin::Sequence`]`(i)` — the per-sequence attention GEMMs of a batched
    /// forward, or any solo forward — is inspected under `schemes[i]`, while batch-stacked
    /// GEMMs ([`GemmOrigin::BatchedRows`]) are inspected under the **strictest** scheme in
    /// the list, because their rows mix every active sequence and a recovery rewrites the
    /// whole accumulator. Install one entry per batch sequence; a sequence beyond the list
    /// (a caller bug) falls back to that same strictest-installed scheme, so an
    /// under-length list can never grant a sequence *more* protection on its private GEMMs
    /// than on the shared ones. An empty list behaves like the construction scheme;
    /// [`SchemeProtector::clear_sequence_schemes`] restores it properly.
    ///
    /// This is how the serving layer honours a per-request
    /// [`ProtectionPolicy`]: the slot → scheme list is refreshed whenever
    /// continuous batching admits or retires a request.
    pub fn set_sequence_schemes(&mut self, schemes: &[ProtectionScheme]) {
        self.batched_scheme = schemes
            .iter()
            .copied()
            .max_by_key(|&s| s.strictness())
            .unwrap_or(self.scheme);
        self.sequence_schemes = Some(schemes.to_vec());
    }

    /// Removes per-sequence schemes; every GEMM reverts to the construction scheme.
    pub fn clear_sequence_schemes(&mut self) {
        self.sequence_schemes = None;
        self.batched_scheme = self.scheme;
    }

    /// Installs a *spatial* scheme overlay: every GEMM of an overlaid component — whoever
    /// owns its rows — is inspected under the overlay scheme instead of whatever the
    /// per-sequence policies would pick. Replaces any previous overlay wholesale.
    ///
    /// The overlay is how an adaptive controller protects components, not requests: the
    /// batch-stacked projections mix every active sequence's rows, so stepping a
    /// sensitive component up to classical ABFT (or a resilient one down under load
    /// pressure) is inherently a batch-global, per-component decision. The overlay
    /// deliberately *replaces* rather than escalates — shedding protection under load
    /// needs to be able to select a scheme weaker than what the requests asked for.
    pub fn set_component_schemes(&mut self, schemes: &[(Component, ProtectionScheme)]) {
        self.component_schemes = schemes.iter().copied().collect();
    }

    /// Removes the spatial overlay; per-sequence policies (or the construction scheme)
    /// decide again for every component.
    pub fn clear_component_schemes(&mut self) {
        self.component_schemes.clear();
    }

    /// The overlay scheme pinned for `component`, if any.
    pub fn component_scheme(&self, component: Component) -> Option<ProtectionScheme> {
        self.component_schemes.get(&component).copied()
    }

    /// The scheme that applies to `ctx`: a spatial component overlay wins outright,
    /// otherwise per-sequence policies apply when installed.
    fn effective_scheme(&self, ctx: &GemmContext) -> ProtectionScheme {
        if let Some(&scheme) = self.component_schemes.get(&ctx.component) {
            return scheme;
        }
        let Some(schemes) = &self.sequence_schemes else {
            return self.scheme;
        };
        match ctx.origin {
            // Out-of-range sequences (an under-length list) fall back to the strictest
            // installed scheme, keeping private and shared GEMMs consistent — see
            // `set_sequence_schemes`.
            GemmOrigin::Sequence(seq) => schemes.get(seq).copied().unwrap_or(self.batched_scheme),
            GemmOrigin::BatchedRows => self.batched_scheme,
        }
    }

    /// The detector the active scheme applies to `ctx`'s component, if any.
    fn detector_for(&self, ctx: &GemmContext) -> Option<&dyn AbftDetector> {
        match self.effective_scheme(ctx) {
            ProtectionScheme::None => None,
            // DMR, Razor and ThunderVolt detect at the circuit level; their detection
            // coverage for additive datapath errors is equivalent to a full checksum
            // comparison, so the classical detector stands in for them. Their costs differ
            // through the recovery policy and the area/power model, not the detector.
            ProtectionScheme::Dmr
            | ProtectionScheme::RazorFfs
            | ProtectionScheme::ThunderVolt
            | ProtectionScheme::ClassicalAbft => Some(&self.classical),
            ProtectionScheme::ApproxAbft => Some(&self.approx),
            ProtectionScheme::StatisticalAbft => Some(
                self.statistical
                    .get(&ctx.component)
                    .expect("every component has a statistical detector"),
            ),
        }
    }

    /// The recovery policy applying to a GEMM inspected under the scheme resolved for
    /// `ctx`.
    ///
    /// Without per-sequence schemes or a component overlay this is the protector-wide
    /// policy (which [`SchemeProtector::set_policy`] can override); when the scheme is
    /// picked dynamically — per-sequence policies installed, or this component overlaid —
    /// the policy follows the effective scheme, so e.g. a classical-ABFT request (or an
    /// escalated component) recomputes on recovery even when the protector was
    /// constructed unprotected.
    fn policy_for(&self, ctx: &GemmContext) -> RecoveryPolicy {
        if self.sequence_schemes.is_some() || self.component_schemes.contains_key(&ctx.component) {
            RecoveryPolicy::default_for_scheme(self.effective_scheme(ctx))
        } else {
            self.policy
        }
    }

    /// Charges one inspection to the stats and reports whether recovery should rewrite the
    /// accumulator.
    fn record(
        &mut self,
        detection: &Detection,
        policy: &RecoveryPolicy,
        m: usize,
        k: usize,
        n: usize,
    ) -> bool {
        let schedule = self.array.schedule_gemm(m, k, n);
        self.stats.record(
            policy,
            detection.errors_detected,
            detection.trigger_recovery,
            schedule.macs,
            schedule.cycles,
            detection.effective_frequency as u64,
        );
        detection.trigger_recovery
            && self.correct_on_recovery
            && !matches!(policy, RecoveryPolicy::None)
    }

    /// Resolves which batch sequences a flagged GEMM's deviation traces back to, into
    /// `scratch.affected`.
    ///
    /// GEMMs owned wholly by one sequence attribute directly; batch-stacked GEMMs
    /// re-reduce the checksums per row group into the scratch's borrowed group buffers
    /// (one extra pass, paid only on detections).
    fn affected_sequences_into(
        &self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        acc: &MatI32,
        scratch: &mut DetectionScratch,
    ) {
        scratch.affected.clear();
        match ctx.origin {
            GemmOrigin::Sequence(seq) => scratch.affected.push(seq),
            GemmOrigin::BatchedRows => match &self.partition {
                // `w` is the stacked activation operand of `Y = W·X`, so its rows — and the
                // accumulator's — are partitioned by sequence.
                Some(parts) if parts.total_rows() == acc.rows() => {
                    checksum::deviating_groups_into(
                        w,
                        x,
                        acc,
                        parts,
                        &mut scratch.group_etw,
                        &mut scratch.group_dev,
                        &mut scratch.affected,
                    );
                }
                _ => {}
            },
        }
    }

    /// Charges a detection (and, when `recovered`, a recovery) to each affected sequence.
    fn attribute(&mut self, affected: &[usize], recovered: bool) {
        for &seq in affected {
            let entry = self.per_sequence.entry(seq).or_default();
            entry.detections += 1;
            if recovered {
                entry.recoveries += 1;
            }
        }
    }

    /// Resolves which tensor-parallel shard stripes a flagged fused-path deviation vector
    /// implicates, into `scratch.shards` (empty when shard attribution is disabled).
    fn affected_shards_into(&self, scratch: &mut DetectionScratch) {
        scratch.shards.clear();
        if let Some(degree) = self.tp_degree {
            checksum::deviating_shards_into(&scratch.deviations, degree, &mut scratch.shards);
        }
    }

    /// Charges a detection (and, when `recovered`, a recovery) to each implicated shard.
    fn attribute_shards(&mut self, shards: &[usize], recovered: bool) {
        for &shard in shards {
            let entry = self.per_shard.entry(shard).or_default();
            entry.detections += 1;
            if recovered {
                entry.recoveries += 1;
            }
        }
    }
}

impl std::fmt::Debug for SchemeProtector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeProtector")
            .field("scheme", &self.scheme)
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl GemmHook for SchemeProtector {
    fn on_gemm(&mut self, ctx: &GemmContext, w: &MatI8, x: &MatI8, acc: &mut MatI32) {
        let policy = self.policy_for(ctx);
        let mut scratch = std::mem::take(&mut self.scratch);
        let Some(detector) = self.detector_for(ctx) else {
            self.scratch = scratch;
            return;
        };
        let detection = detector.inspect(w, x, acc);
        // Attribution must read the accumulator before recovery rewrites it.
        if detection.errors_detected {
            self.affected_sequences_into(ctx, w, x, acc, &mut scratch);
        } else {
            scratch.affected.clear();
        }
        let recover = self.record(&detection, &policy, w.rows(), w.cols(), x.cols());
        self.attribute(&scratch.affected, recover);
        if recover {
            // Operands are fault-free (ECC-protected memory), so re-executing the GEMM at a
            // safe voltage reproduces the exact result — written back into the accumulator's
            // own storage.
            self.engine
                .gemm_i8_into(w, x, acc)
                .expect("operand shapes were already validated");
        }
        self.scratch = scratch;
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        w: &MatI8,
        x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        let policy = self.policy_for(ctx);
        // The scratch is taken around the detector borrow (a couple of pointer moves, no
        // allocation), so every inspection of the decode hot loop reuses the same buffers.
        let mut scratch = std::mem::take(&mut self.scratch);
        let Some(detector) = self.detector_for(ctx) else {
            self.scratch = scratch;
            return;
        };
        // The fused pass already paid for the operand-side checksum; only the observed side
        // is (lazily) refreshed if an upstream injector mutated the accumulator. This is the
        // hot path of every protected pipeline run.
        let detection = detector.inspect_checksummed_into(result, &mut scratch.deviations);
        // Attribution must read the accumulator before recovery rewrites it; the per-group
        // re-reduction runs only on flagged GEMMs, so the fault-free fast path stays fast.
        if detection.errors_detected {
            self.affected_sequences_into(ctx, w, x, result.acc(), &mut scratch);
            self.affected_shards_into(&mut scratch);
        } else {
            scratch.affected.clear();
            scratch.shards.clear();
        }
        let recover = self.record(&detection, &policy, w.rows(), w.cols(), x.cols());
        self.attribute(&scratch.affected, recover);
        self.attribute_shards(&scratch.shards, recover);
        if recover {
            // Recompute into the existing accumulator/checksum buffers instead of swapping
            // in a fresh allocation (recoveries rewrite the whole bundle anyway).
            self.engine
                .gemm_i8_checksummed_into(w, x, result, &mut scratch.group_etw)
                .expect("operand shapes were already validated");
        }
        self.scratch = scratch;
    }

    fn wants_checksums(&self) -> bool {
        // `ProtectionScheme::None` never inspects anything, so those runs can skip the
        // fused checksum reductions at the GEMM level entirely. Installed per-sequence
        // schemes define the batch's protection intent: an all-unprotected batch skips the
        // reductions even when the construction scheme would inspect. (A sequence beyond
        // the installed list still falls back to the construction scheme — its detector
        // then pays the two-pass inspection path instead of reading fused checksums.)
        // A spatial overlay that inspects *any* component keeps the reductions on too.
        if self
            .component_schemes
            .values()
            .any(|s| !matches!(s, ProtectionScheme::None))
        {
            return true;
        }
        match &self.sequence_schemes {
            Some(schemes) => schemes.iter().any(|s| !matches!(s, ProtectionScheme::None)),
            None => !matches!(self.scheme, ProtectionScheme::None),
        }
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        self.partition = Some(partition.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::FixedBitModel, injector::ErrorInjector};
    use realm_llm::hooks::HookChain;
    use realm_llm::{config::ModelConfig, model::Model, NoopHook};
    use realm_systolic::Dataflow;

    fn array() -> SystolicArray {
        SystolicArray::small(Dataflow::WeightStationary)
    }

    #[test]
    fn region_assignment_defaults_by_sensitivity() {
        let assignment = RegionAssignment::new();
        assert!(assignment.is_empty());
        let sensitive = assignment.region_for(Component::O);
        let resilient = assignment.region_for(Component::Q);
        assert!(sensitive.theta_freq_log2 < resilient.theta_freq_log2);
        let mut custom = RegionAssignment::new();
        custom.set(Component::Q, CriticalRegion::new(1.5, 30.0, 6.0));
        assert_eq!(custom.len(), 1);
        assert!((custom.region_for(Component::Q).b - 30.0).abs() < 1e-12);
    }

    #[test]
    fn classical_protector_restores_clean_results() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3, 4], &mut NoopHook).unwrap();

        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (protected_logits, _) = model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();

        assert_eq!(
            protected_logits, clean_logits,
            "classical ABFT fully repairs the run"
        );
        assert!(protector.stats().recoveries_triggered > 0);
        assert!(protector.stats().recovery_macs > 0);
    }

    #[test]
    fn unprotected_scheme_leaves_errors_in_place() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3, 4], &mut NoopHook).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector = SchemeProtector::with_default_regions(ProtectionScheme::None, array());
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (faulty_logits, _) = model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();
        assert_ne!(faulty_logits, clean_logits);
        assert_eq!(protector.stats().gemms_inspected, 0);
    }

    #[test]
    fn statistical_protector_recovers_less_than_classical() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let prompt: Vec<u32> = (0..12).map(|t| t % 8).collect();

        let run = |scheme: ProtectionScheme| {
            let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.002), 77);
            let mut protector = SchemeProtector::with_default_regions(scheme, array());
            let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
            model.prefill(&prompt, &mut chain).unwrap();
            (
                protector.stats().recoveries_triggered,
                protector.stats().gemms_with_errors,
            )
        };
        let (classical_recoveries, classical_errors) = run(ProtectionScheme::ClassicalAbft);
        let (statistical_recoveries, statistical_errors) = run(ProtectionScheme::StatisticalAbft);
        assert_eq!(
            classical_errors, statistical_errors,
            "same faults are observed"
        );
        assert_eq!(
            classical_recoveries, classical_errors,
            "classical recovers every corrupted GEMM"
        );
        assert!(
            statistical_recoveries < classical_recoveries,
            "statistical ABFT must skip some recoveries ({statistical_recoveries} vs {classical_recoveries})"
        );
    }

    #[test]
    fn batched_detections_attribute_to_the_corrupted_sequence() {
        use realm_llm::hooks::GemmContext;
        use realm_tensor::RowPartition;

        // A hook that corrupts one accumulator row belonging to a known batch sequence in
        // the first batch-stacked GEMM it sees.
        struct CorruptSequence {
            partition: Option<RowPartition>,
            target_seq: usize,
            done: bool,
        }
        impl GemmHook for CorruptSequence {
            fn on_gemm(&mut self, _: &GemmContext, _: &MatI8, _: &MatI8, _: &mut MatI32) {}
            fn on_gemm_checksummed(
                &mut self,
                ctx: &GemmContext,
                _w: &MatI8,
                _x: &MatI8,
                result: &mut ChecksummedGemm,
            ) {
                if self.done || !matches!(ctx.origin, realm_llm::GemmOrigin::BatchedRows) {
                    return;
                }
                let range = self
                    .partition
                    .as_ref()
                    .expect("partition announced before batched GEMMs")
                    .range(self.target_seq);
                let row = range.start;
                let acc = result.acc_mut();
                acc[(row, 0)] = acc[(row, 0)].wrapping_add(1 << 20);
                self.done = true;
            }
            fn wants_checksums(&self) -> bool {
                false
            }
            fn on_batch_begin(&mut self, partition: &RowPartition) {
                if self.partition.is_none() {
                    self.partition = Some(partition.clone());
                }
            }
        }

        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9]];
        let (clean_logits, _) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();

        let mut corruptor = CorruptSequence {
            partition: None,
            target_seq: 2,
            done: false,
        };
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        let mut chain = HookChain::new().with(&mut corruptor).with(&mut protector);
        let (protected_logits, _) = model.prefill_batch(&prompts, &mut chain).unwrap();

        let attribution = protector.sequence_attribution();
        assert_eq!(
            attribution.get(&2),
            Some(&SequenceAttribution {
                detections: 1,
                recoveries: 1
            }),
            "the corrupted sequence is charged: {attribution:?}"
        );
        assert!(
            !attribution.contains_key(&0) && !attribution.contains_key(&1),
            "untouched sequences are not charged: {attribution:?}"
        );
        assert_eq!(
            protected_logits, clean_logits,
            "classical ABFT repairs the batched run"
        );
    }

    #[test]
    fn single_sequence_runs_attribute_to_index_zero() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();
        let attribution = protector.sequence_attribution();
        assert_eq!(attribution.len(), 1);
        assert!(attribution.get(&0).unwrap().detections > 0);
        protector.reset_stats();
        assert!(protector.sequence_attribution().is_empty());
    }

    #[test]
    fn protection_policy_defaults_and_constructors() {
        assert_eq!(
            ProtectionPolicy::default().scheme,
            ProtectionScheme::StatisticalAbft
        );
        assert_eq!(
            ProtectionPolicy::classical().scheme,
            ProtectionScheme::ClassicalAbft
        );
        assert_eq!(
            ProtectionPolicy::new(ProtectionScheme::ApproxAbft).scheme,
            ProtectionScheme::ApproxAbft
        );
        assert!(ProtectionScheme::ClassicalAbft.strictness() > ProtectionScheme::None.strictness());
    }

    #[test]
    fn sequence_schemes_enable_protection_on_an_unprotected_base() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3, 4], &mut NoopHook).unwrap();

        // Base scheme None would inspect nothing; a per-sequence classical policy for the
        // solo sequence (index 0) restores full protection.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector = SchemeProtector::with_default_regions(ProtectionScheme::None, array());
        protector.set_sequence_schemes(&[ProtectionScheme::ClassicalAbft]);
        assert!(protector.wants_checksums());
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (protected_logits, _) = model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();
        assert_eq!(protected_logits, clean_logits);
        assert!(protector.stats().recoveries_triggered > 0);

        // Clearing the schemes reverts to the (unprotected) construction scheme.
        protector.clear_sequence_schemes();
        assert!(!protector.wants_checksums());
    }

    #[test]
    fn region_assignment_ranks_sensitive_components_first() {
        let assignment = RegionAssignment::new();
        let ranked = assignment.ranked_components();
        assert_eq!(ranked.len(), Component::ALL.len());
        // With default regions the three sensitive components lead the ranking.
        assert!(ranked[..3].iter().all(|c| c.is_sensitive()), "{ranked:?}");
        assert_eq!(
            assignment.sensitive_components(),
            vec![Component::O, Component::Fc2, Component::Down]
        );
        // A fitted region can promote a nominally resilient component to the front.
        let mut custom = RegionAssignment::new();
        custom.set(Component::Fc1, CriticalRegion::new(1.1, 10.0, -2.0));
        assert_eq!(custom.ranked_components()[0], Component::Fc1);
        assert!(custom.sensitive_components().contains(&Component::Fc1));
    }

    #[test]
    fn component_overlay_replaces_the_effective_scheme() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3, 4], &mut NoopHook).unwrap();

        // An unprotected base with a classical overlay on every component behaves like a
        // classical protector: the overlay replaces, per component, what the sequence
        // policies (here: none installed, so the construction scheme) would pick.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector = SchemeProtector::with_default_regions(ProtectionScheme::None, array());
        let overlay: Vec<(Component, ProtectionScheme)> = Component::ALL
            .iter()
            .map(|&c| (c, ProtectionScheme::ClassicalAbft))
            .collect();
        protector.set_component_schemes(&overlay);
        assert!(protector.wants_checksums());
        assert_eq!(
            protector.component_scheme(Component::O),
            Some(ProtectionScheme::ClassicalAbft)
        );
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (protected_logits, _) = model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();
        assert_eq!(protected_logits, clean_logits);
        assert!(protector.stats().recoveries_triggered > 0);

        // Clearing the overlay reverts to the unprotected construction scheme.
        protector.clear_component_schemes();
        assert!(!protector.wants_checksums());
        assert_eq!(protector.component_scheme(Component::O), None);

        // The overlay also *weakens*: pinning one component to None on a classical base
        // leaves that component's faults unrepaired while the rest stay covered.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut shed =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        shed.set_component_schemes(&[(Component::Fc1, ProtectionScheme::None)]);
        let mut chain = HookChain::new().with(&mut injector).with(&mut shed);
        let (shed_logits, _) = model.prefill(&[1, 2, 3, 4], &mut chain).unwrap();
        assert_ne!(
            shed_logits, clean_logits,
            "faults on the shed component flow through"
        );
        assert!(
            shed.stats().recoveries_triggered > 0,
            "other components are still repaired"
        );
    }

    #[test]
    fn mixed_policy_batch_escalates_to_the_strictest_scheme() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let (clean_logits, _) = model.prefill_batch(&prompts, &mut NoopHook).unwrap();

        // Sequence 0 asked for no protection, sequence 1 for classical ABFT: the
        // batch-stacked GEMMs carry both sequences' rows, so they are inspected (and
        // repaired) under the strictest request's scheme.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.05), 13);
        let mut protector = SchemeProtector::with_default_regions(ProtectionScheme::None, array());
        protector.set_sequence_schemes(&[ProtectionScheme::None, ProtectionScheme::ClassicalAbft]);
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (protected_logits, _) = model.prefill_batch(&prompts, &mut chain).unwrap();
        assert!(protector.stats().gemms_inspected > 0);
        // The protected request comes out bit-clean: its private attention GEMMs run under
        // its own classical scheme and the shared projections are escalated to it. The
        // unprotected request's private GEMMs stay uninspected — escalation protects the
        // shared rows, it does not upgrade what a request runs alone.
        assert_eq!(
            protected_logits[1], clean_logits[1],
            "escalated classical ABFT repairs the protected request"
        );

        // All-None policies skip inspection entirely and leave the faults in place.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.05), 13);
        let mut unprotected =
            SchemeProtector::with_default_regions(ProtectionScheme::None, array());
        unprotected.set_sequence_schemes(&[ProtectionScheme::None, ProtectionScheme::None]);
        assert!(!unprotected.wants_checksums());
        let mut chain = HookChain::new().with(&mut injector).with(&mut unprotected);
        let (faulty_logits, _) = model.prefill_batch(&prompts, &mut chain).unwrap();
        assert_eq!(unprotected.stats().gemms_inspected, 0);
        assert_ne!(faulty_logits, clean_logits);

        // The installed schemes define the batch's intent: all-unprotected skips the fused
        // checksum reductions even when the construction scheme would inspect.
        let mut statistical_base =
            SchemeProtector::with_default_regions(ProtectionScheme::StatisticalAbft, array());
        statistical_base.set_sequence_schemes(&[ProtectionScheme::None, ProtectionScheme::None]);
        assert!(!statistical_base.wants_checksums());

        // An under-length list (caller bug) stays self-consistent: the out-of-range
        // sequence falls back to the strictest *installed* scheme, not the construction
        // scheme, so with an all-None list nothing anywhere is inspected.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.05), 13);
        let mut short_list =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        short_list.set_sequence_schemes(&[ProtectionScheme::None]);
        assert!(!short_list.wants_checksums());
        let mut chain = HookChain::new().with(&mut injector).with(&mut short_list);
        model.prefill_batch(&prompts, &mut chain).unwrap();
        assert_eq!(
            short_list.stats().gemms_inspected,
            0,
            "no sequence of an all-None list is inspected, in range or not"
        );
    }

    #[test]
    fn fused_detections_attribute_to_the_corrupted_shard() {
        let mut config = ModelConfig::tiny_opt();
        config.tp_degree = 3;
        let model = Model::new(&config, 2).unwrap();
        let clean = Model::new(&ModelConfig::tiny_opt(), 2)
            .unwrap()
            .generate(&[1, 2, 3], 6, &mut NoopHook)
            .unwrap();

        // Arm a garble on shard 1 only; the protector (which wants checksums, keeping the
        // fused sharded path on) must localize every detection to that shard's stripe and
        // repair the run bit-exactly.
        let group = std::sync::Arc::clone(model.tp_group().unwrap());
        group.inject_shard_fault(1, realm_tensor::ShardFault::Garble { seed: 21 }, 2);
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        protector.set_shard_attribution(Some(group.degree()));
        let out = model.generate(&[1, 2, 3], 6, &mut protector).unwrap();
        assert_eq!(out, clean, "the sharded layer itself recovers the garble");

        // The shard's own checksum segment recovered the corruption *below* the hook, so
        // the protector saw clean merged results: the shard-level stats carry the event.
        let totals = group.totals();
        assert_eq!(totals.detections, 2);
        assert_eq!(totals.failovers, 2);
        assert!(protector.shard_attribution().is_empty());

        // Now corrupt *above* the sharded layer (the injector mutates the merged
        // accumulator): the protector detects, recovers, and attributes the deviation to
        // the shard stripes the deviating columns fall in.
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let repaired = model.generate(&[1, 2, 3], 6, &mut chain).unwrap();
        assert_eq!(repaired, clean);
        let attribution = protector.shard_attribution();
        assert!(
            !attribution.is_empty(),
            "merged-accumulator corruptions localize to shard stripes"
        );
        assert!(attribution.keys().all(|&s| s < 3));
        let (detections, recoveries) = attribution
            .values()
            .fold((0, 0), |(d, r), a| (d + a.detections, r + a.recoveries));
        assert!(detections >= recoveries && recoveries > 0);

        // Attribution is pure bookkeeping: disabling it changes nothing about repair.
        protector.reset_stats();
        assert!(protector.shard_attribution().is_empty());
        protector.set_shard_attribution(None);
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let repaired = model.generate(&[1, 2, 3], 6, &mut chain).unwrap();
        assert_eq!(repaired, clean);
        assert!(protector.shard_attribution().is_empty());
    }

    #[test]
    fn per_error_replay_policy_records_cycles_not_macs() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.05), 5);
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ThunderVolt, array());
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        model.prefill(&[3, 4, 5, 6], &mut chain).unwrap();
        let stats = protector.stats();
        assert!(stats.recoveries_triggered > 0);
        assert_eq!(
            stats.recovery_macs, 0,
            "replay does not recompute whole GEMMs"
        );
        assert!(stats.recovery_cycles > 0);
    }

    #[test]
    fn disabling_correction_keeps_detection_statistics() {
        let model = Model::new(&ModelConfig::tiny_opt(), 2).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3], &mut NoopHook).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(0.2), 9);
        let mut protector =
            SchemeProtector::with_default_regions(ProtectionScheme::ClassicalAbft, array());
        protector.set_correct_on_recovery(false);
        let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
        let (logits, _) = model.prefill(&[1, 2, 3], &mut chain).unwrap();
        assert_ne!(
            logits, clean_logits,
            "errors remain because correction is disabled"
        );
        assert!(protector.stats().recoveries_triggered > 0);
        protector.reset_stats();
        assert_eq!(protector.stats().recoveries_triggered, 0);
    }
}
