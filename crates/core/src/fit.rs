//! Fitting per-component critical regions from characterization data (Sec. V-A).
//!
//! The paper sets its detector parameters empirically: it injects controlled
//! magnitude/frequency error patterns into each network component, measures the task
//! degradation, declares a budget (e.g. "0.3 perplexity increase, 0.5% accuracy drop
//! acceptable") and fits the critical-region boundary to the transition between acceptable
//! and unacceptable patterns. [`fit_component_region`] performs that procedure for one
//! component, and [`fit_all_components`] produces the full [`RegionAssignment`] consumed by
//! the statistical protector.

use crate::characterize::{magfreq_study, MagFreqPoint, StudyConfig};
use crate::protection::RegionAssignment;
use crate::{CoreError, Result};
use realm_abft::critical_region::{CriticalRegion, RegionSample};
use realm_eval::task::Task;
use realm_llm::{Component, Model};
use serde::{Deserialize, Serialize};

/// Acceptable-degradation budget used when classifying characterization samples.
///
/// The paper's evaluation allows a 0.3 perplexity increase / 0.5% accuracy decrease.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationBudget {
    /// Maximum tolerated increase of a lower-is-better metric (perplexity).
    pub max_metric_increase: f64,
}

impl DegradationBudget {
    /// The paper's default budget expressed for perplexity-style metrics.
    pub fn paper_default() -> Self {
        Self {
            max_metric_increase: 0.3,
        }
    }

    /// A custom budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is negative.
    pub fn new(max_metric_increase: f64) -> Self {
        assert!(max_metric_increase >= 0.0, "budgets cannot be negative");
        Self {
            max_metric_increase,
        }
    }
}

/// Converts a magnitude/frequency characterization grid into critical-region samples.
///
/// `clean_value` is the task metric without any injection; each grid point's degradation is
/// computed relative to it using the task metric's direction.
pub fn grid_to_samples(
    grid: &[MagFreqPoint],
    clean_value: f64,
    higher_is_better: bool,
) -> Vec<RegionSample> {
    grid.iter()
        .map(|p| RegionSample {
            log2_mag: p.log2_mag,
            log2_freq: p.log2_freq,
            degradation: if higher_is_better {
                clean_value - p.value
            } else {
                p.value - clean_value
            },
        })
        .collect()
}

/// Result of fitting one component's critical region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentFit {
    /// The component the region applies to.
    pub component: Component,
    /// The fitted region (or the class default when the grid had no critical transition).
    pub region: CriticalRegion,
    /// Whether the region came from an actual fit (`true`) or fell back to the class default
    /// (`false`, e.g. when every sampled pattern stayed within the budget).
    pub fitted: bool,
}

/// Fits the critical region of a single component from a magnitude/frequency study.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if the sweep definitions are empty, and
/// propagates task-evaluation errors.
pub fn fit_component_region<T: Task + Sync>(
    model: &Model,
    task: &T,
    component: Component,
    log2_msds: &[u32],
    log2_freqs: &[u32],
    budget: &DegradationBudget,
    config: &StudyConfig,
) -> Result<ComponentFit> {
    let clean = task
        .evaluate(model, &mut realm_llm::NoopHook)
        .map_err(CoreError::from)?;
    let grid = magfreq_study(model, task, component, log2_msds, log2_freqs, config)?;
    let samples = grid_to_samples(&grid, clean, task.metric().higher_is_better());
    match CriticalRegion::fit(&samples, budget.max_metric_increase) {
        Some(region) => Ok(ComponentFit {
            component,
            region,
            fitted: true,
        }),
        None => Ok(ComponentFit {
            component,
            region: if component.is_sensitive() {
                CriticalRegion::sensitive_default()
            } else {
                CriticalRegion::resilient_default()
            },
            fitted: false,
        }),
    }
}

/// Fits critical regions for a set of components and bundles them into a [`RegionAssignment`].
///
/// # Errors
///
/// Propagates errors from the per-component fits.
pub fn fit_all_components<T: Task + Sync>(
    model: &Model,
    task: &T,
    components: &[Component],
    log2_msds: &[u32],
    log2_freqs: &[u32],
    budget: &DegradationBudget,
    config: &StudyConfig,
) -> Result<(RegionAssignment, Vec<ComponentFit>)> {
    let mut assignment = RegionAssignment::new();
    let mut fits = Vec::with_capacity(components.len());
    for &component in components {
        let fit = fit_component_region(
            model, task, component, log2_msds, log2_freqs, budget, config,
        )?;
        assignment.set(component, fit.region);
        fits.push(fit);
    }
    Ok((assignment, fits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_eval::wikitext::WikitextTask;
    use realm_llm::config::ModelConfig;

    #[test]
    fn budget_constructors_validate() {
        assert_eq!(DegradationBudget::paper_default().max_metric_increase, 0.3);
        assert_eq!(DegradationBudget::new(1.5).max_metric_increase, 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_budget_is_rejected() {
        let _ = DegradationBudget::new(-0.1);
    }

    #[test]
    fn grid_to_samples_respects_metric_direction() {
        let grid = vec![MagFreqPoint {
            log2_mag: 10.0,
            log2_freq: 2.0,
            log2_msd: 12.0,
            value: 20.0,
        }];
        let ppl_samples = grid_to_samples(&grid, 15.0, false);
        assert!((ppl_samples[0].degradation - 5.0).abs() < 1e-12);
        let acc_samples = grid_to_samples(&grid, 80.0, true);
        assert!((acc_samples[0].degradation - 60.0).abs() < 1e-12);
    }

    #[test]
    fn fitting_a_resilient_component_yields_permissive_region() {
        let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
        let task = WikitextTask::quick(model.language(), 7);
        let fit = fit_component_region(
            &model,
            &task,
            Component::K,
            &[16, 22, 26],
            &[0, 2, 4, 6],
            &DegradationBudget::new(1.0),
            &StudyConfig::quick(3),
        )
        .unwrap();
        assert_eq!(fit.component, Component::K);
        // Whether fitted or defaulted, a resilient component must tolerate a single error.
        assert!(!fit.region.requires_recovery(1, 1 << 22));
    }

    #[test]
    fn fit_all_components_builds_an_assignment() {
        let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
        let task = WikitextTask::quick(model.language(), 7);
        let (assignment, fits) = fit_all_components(
            &model,
            &task,
            &[Component::K, Component::O],
            &[18, 24],
            &[0, 3],
            &DegradationBudget::new(1.0),
            &StudyConfig::quick(3),
        )
        .unwrap();
        assert_eq!(fits.len(), 2);
        assert_eq!(assignment.len(), 2);
        // The statistical protector consults these regions per component.
        let _ = assignment.region_for(Component::K);
        let _ = assignment.region_for(Component::O);
    }
}
