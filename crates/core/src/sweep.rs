//! Voltage sweeps, sweet-spot search and trade-off exploration (Fig. 9, Fig. 10, Table II).

use crate::pipeline::{PipelineOutcome, ProtectedPipeline};
use crate::{CoreError, Result};
use realm_eval::task::Task;
use realm_llm::Component;
use realm_systolic::ProtectionScheme;
use serde::{Deserialize, Serialize};

/// A voltage sweep of one protection scheme (one curve of Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageSweep {
    /// The protection scheme swept.
    pub scheme: ProtectionScheme,
    /// One pipeline outcome per voltage point, in ascending voltage order.
    pub outcomes: Vec<PipelineOutcome>,
}

impl VoltageSweep {
    /// The outcome with minimal total energy whose task value stays within `budget` of
    /// `clean_value` (the "sweet spot" of Fig. 9), if any point qualifies.
    pub fn sweet_spot(
        &self,
        clean_value: f64,
        higher_is_better: bool,
        budget: f64,
    ) -> Option<&PipelineOutcome> {
        self.outcomes
            .iter()
            .filter(|o| degradation(clean_value, o.task_value, higher_is_better) <= budget)
            .min_by(|a, b| {
                a.energy
                    .total_j()
                    .partial_cmp(&b.energy.total_j())
                    .expect("energies are finite")
            })
    }
}

fn degradation(clean: f64, value: f64, higher_is_better: bool) -> f64 {
    if higher_is_better {
        clean - value
    } else {
        value - clean
    }
}

/// Sweeps a protection scheme across operating voltages.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] for an empty voltage list and propagates pipeline
/// errors.
pub fn voltage_sweep(
    pipeline: &ProtectedPipeline<'_>,
    task: &dyn Task,
    scheme: ProtectionScheme,
    voltages: &[f64],
    seed: u64,
) -> Result<VoltageSweep> {
    if voltages.is_empty() {
        return Err(CoreError::InvalidExperiment {
            detail: "the voltage sweep is empty".into(),
        });
    }
    let mut outcomes = Vec::with_capacity(voltages.len());
    for (i, &v) in voltages.iter().enumerate() {
        outcomes.push(pipeline.run(task, scheme, v, seed.wrapping_add(i as u64))?);
    }
    Ok(VoltageSweep { scheme, outcomes })
}

/// Comparison of several schemes over the same voltage range (the full Fig. 9 panel).
///
/// # Errors
///
/// Propagates errors from the individual sweeps.
pub fn scheme_comparison(
    pipeline: &ProtectedPipeline<'_>,
    task: &dyn Task,
    schemes: &[ProtectionScheme],
    voltages: &[f64],
    seed: u64,
) -> Result<Vec<VoltageSweep>> {
    schemes
        .iter()
        .map(|&scheme| voltage_sweep(pipeline, task, scheme, voltages, seed))
        .collect()
}

/// Table II row: the best operating point found for one network component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentSweetSpot {
    /// The protected component.
    pub component: Component,
    /// Optimal (minimum-energy, within-budget) operating voltage.
    pub optimal_voltage: f64,
    /// Total energy at the optimal voltage, in joules.
    pub optimal_energy_j: f64,
    /// Energy of the reference scheme at its own best within-budget point, in joules.
    pub baseline_energy_j: f64,
    /// Energy saving relative to the reference scheme, in percent.
    pub energy_saving_percent: f64,
}

/// Finds the per-component sweet spots of the statistical scheme against a baseline scheme
/// (Table II: "optimal voltage" and "energy saving" per network component).
///
/// For every component, errors are injected only into that component (the paper's per-
/// component protection experiment); both schemes are swept over `voltages`, their
/// within-budget minimum-energy points are located, and the saving is reported.
///
/// # Errors
///
/// Propagates sweep errors; a component whose sweeps produce no within-budget point for
/// either scheme yields an [`CoreError::InvalidExperiment`].
#[allow(clippy::too_many_arguments)]
pub fn component_sweet_spots(
    model: &realm_llm::Model,
    base_config: &crate::pipeline::PipelineConfig,
    task: &dyn Task,
    components: &[Component],
    baseline_scheme: ProtectionScheme,
    voltages: &[f64],
    budget: f64,
    seed: u64,
) -> Result<Vec<ComponentSweetSpot>> {
    let higher_is_better = task.metric().higher_is_better();
    let mut rows = Vec::with_capacity(components.len());
    for &component in components {
        let config = crate::pipeline::PipelineConfig {
            protected_component: Some(component),
            ..base_config.clone()
        };
        let pipeline = ProtectedPipeline::new(model, config);
        let clean_value = pipeline.clean_value(task)?;
        let ours = voltage_sweep(
            &pipeline,
            task,
            ProtectionScheme::StatisticalAbft,
            voltages,
            seed,
        )?;
        let baseline = voltage_sweep(&pipeline, task, baseline_scheme, voltages, seed)?;
        let our_spot = ours
            .sweet_spot(clean_value, higher_is_better, budget)
            .ok_or_else(|| CoreError::InvalidExperiment {
                detail: format!("no within-budget operating point for {component}"),
            })?;
        let base_spot = baseline
            .sweet_spot(clean_value, higher_is_better, budget)
            .ok_or_else(|| CoreError::InvalidExperiment {
                detail: format!("no within-budget baseline point for {component}"),
            })?;
        let ours_j = our_spot.energy.total_j();
        let base_j = base_spot.energy.total_j();
        rows.push(ComponentSweetSpot {
            component,
            optimal_voltage: our_spot.voltage,
            optimal_energy_j: ours_j,
            baseline_energy_j: base_j,
            energy_saving_percent: 100.0 * (base_j - ours_j) / base_j,
        });
    }
    Ok(rows)
}

/// One point of the Fig. 10 trade-off: an acceptable-degradation budget and the resulting
/// recovery latency and energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Acceptable degradation used to position the detector thresholds / pick the sweet spot.
    pub budget: f64,
    /// Recovery cycles at the fixed evaluation voltage.
    pub recovery_cycles: u64,
    /// Total energy at the best within-budget voltage, in joules.
    pub optimal_energy_j: f64,
    /// The voltage of that best point.
    pub optimal_voltage: f64,
}

/// Explores the trade-off between the acceptable performance degradation and the recovery
/// latency / total energy (Fig. 10).
///
/// `eval_voltage` is the fixed voltage at which recovery latency is reported (0.72 V / 0.70 V
/// in the paper); the energy is reported at the best within-budget voltage of the sweep.
///
/// # Errors
///
/// Propagates sweep errors; budgets for which no voltage stays within budget are skipped.
pub fn degradation_tradeoff(
    pipeline: &ProtectedPipeline<'_>,
    task: &dyn Task,
    budgets: &[f64],
    voltages: &[f64],
    eval_voltage: f64,
    seed: u64,
) -> Result<Vec<TradeoffPoint>> {
    if budgets.is_empty() {
        return Err(CoreError::InvalidExperiment {
            detail: "the budget sweep is empty".into(),
        });
    }
    let clean = pipeline.clean_value(task)?;
    let higher_is_better = task.metric().higher_is_better();
    let sweep = voltage_sweep(
        pipeline,
        task,
        ProtectionScheme::StatisticalAbft,
        voltages,
        seed,
    )?;
    let fixed = pipeline.run(task, ProtectionScheme::StatisticalAbft, eval_voltage, seed)?;
    let mut points = Vec::new();
    for &budget in budgets {
        if let Some(spot) = sweep.sweet_spot(clean, higher_is_better, budget) {
            points.push(TradeoffPoint {
                budget,
                recovery_cycles: fixed.recovery_cycles,
                optimal_energy_j: spot.energy.total_j(),
                optimal_voltage: spot.voltage,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use realm_eval::wikitext::WikitextTask;
    use realm_llm::{config::ModelConfig, Model};
    use realm_systolic::{Dataflow, SystolicArray};

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            array: SystolicArray::small(Dataflow::WeightStationary),
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn voltage_sweep_orders_outcomes_and_finds_sweet_spot() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let voltages = [0.62, 0.70, 0.78, 0.86];
        let sweep = voltage_sweep(
            &pipeline,
            &task,
            ProtectionScheme::StatisticalAbft,
            &voltages,
            5,
        )
        .unwrap();
        assert_eq!(sweep.outcomes.len(), 4);
        let spot = sweep
            .sweet_spot(clean, false, 0.5)
            .expect("a sweet spot exists");
        assert!(voltages.contains(&spot.voltage));
        // The sweet spot must not sit at the highest voltage: undervolting saves energy.
        assert!(spot.voltage < 0.86 + 1e-12);
        // And its energy is the minimum among within-budget points.
        for o in &sweep.outcomes {
            if o.task_value - clean <= 0.5 {
                assert!(spot.energy.total_j() <= o.energy.total_j() + 1e-15);
            }
        }
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        let pipeline = ProtectedPipeline::new(&model, small_config());
        assert!(voltage_sweep(&pipeline, &task, ProtectionScheme::None, &[], 1).is_err());
        assert!(degradation_tradeoff(&pipeline, &task, &[], &[0.7], 0.7, 1).is_err());
    }

    #[test]
    fn scheme_comparison_produces_one_sweep_per_scheme() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let sweeps = scheme_comparison(
            &pipeline,
            &task,
            &[
                ProtectionScheme::ClassicalAbft,
                ProtectionScheme::StatisticalAbft,
            ],
            &[0.68, 0.80],
            9,
        )
        .unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].scheme, ProtectionScheme::ClassicalAbft);
        assert_eq!(sweeps[1].outcomes.len(), 2);
    }

    #[test]
    fn larger_budgets_never_cost_more_energy() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let points = degradation_tradeoff(
            &pipeline,
            &task,
            &[0.1, 0.5, 2.0, 10.0],
            &[0.62, 0.68, 0.74, 0.80, 0.86],
            0.72,
            7,
        )
        .unwrap();
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(
                pair[1].optimal_energy_j <= pair[0].optimal_energy_j + 1e-15,
                "relaxing the budget cannot increase the optimal energy"
            );
        }
    }
}
