use std::error::Error;
use std::fmt;

use realm_llm::LlmError;
use realm_tensor::TensorError;

/// Errors produced by the ReaLM framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An experiment configuration is inconsistent (empty sweeps, invalid budgets, ...).
    InvalidExperiment {
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// Fitting the critical region failed (e.g. no critical samples under the budget).
    FitFailed {
        /// Explanation of why the fit could not be produced.
        detail: String,
    },
    /// An underlying model-inference error.
    Llm(LlmError),
    /// An underlying tensor error.
    Tensor(TensorError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidExperiment { detail } => {
                write!(f, "invalid experiment configuration: {detail}")
            }
            CoreError::FitFailed { detail } => write!(f, "critical-region fit failed: {detail}"),
            CoreError::Llm(e) => write!(f, "model inference failed: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Llm(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LlmError> for CoreError {
    fn from(e: LlmError) -> Self {
        CoreError::Llm(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let e = CoreError::InvalidExperiment {
            detail: "empty voltage sweep".into(),
        };
        assert!(e.to_string().contains("empty voltage sweep"));
        assert!(e.source().is_none());

        let inner = LlmError::InvalidSequence { detail: "x".into() };
        let wrapped: CoreError = inner.into();
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("model inference failed"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
