//! LLM resilience characterization: the paper's error-injection studies Q1.1–Q2.2 (Sec. IV).
//!
//! Every study follows the same recipe: pick an error model and a target (which layers /
//! components / stages receive errors), run many independent Monte-Carlo trials of a task
//! evaluation with that injector attached, and report the mean task metric per sweep point.
//! The functions here produce the data series behind Fig. 4 and Fig. 5; the `realm-bench`
//! binaries print them in the paper's layout.

use crate::Result;
use rayon::prelude::*;
use realm_eval::task::Task;
use realm_inject::{
    campaign::TrialSummary,
    error_model::{FixedBitModel, MagFreqModel},
    injector::ErrorInjector,
    targeting::Target,
};
use realm_llm::norm::LayerNorm;
use realm_llm::{Component, Model, Stage};
use realm_tensor::rng;
use serde::{Deserialize, Serialize};

/// Shared configuration of a characterization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Independent fault-injection trials per sweep point.
    pub trials: usize,
    /// Base seed; every trial derives its own deterministic seed from it.
    pub seed: u64,
    /// Bit position flipped by the BER-style studies (the paper targets bit 30).
    pub bit: u8,
}

impl StudyConfig {
    /// A quick configuration for tests and examples (few trials).
    pub fn quick(seed: u64) -> Self {
        Self {
            trials: 4,
            seed,
            bit: 30,
        }
    }

    /// The configuration used by the benchmark harnesses.
    pub fn standard(seed: u64) -> Self {
        Self {
            trials: 12,
            seed,
            bit: 30,
        }
    }
}

/// One sweep point: an x-coordinate (BER, frequency, ...) and the aggregated task metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept quantity (meaning depends on the study: BER, log₂ freq, ...).
    pub x: f64,
    /// Mean task metric over the trials.
    pub value: f64,
    /// Sample standard deviation over the trials.
    pub std: f64,
}

/// A labelled series of sweep points (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (layer index, bit position, component name, ...).
    pub label: String,
    /// The sweep points in x order.
    pub points: Vec<SweepPoint>,
}

/// One magnitude/frequency grid point of the Q1.4 study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MagFreqPoint {
    /// log₂ of the injected error magnitude.
    pub log2_mag: f64,
    /// log₂ of the injected error frequency.
    pub log2_freq: f64,
    /// log₂ of the resulting matrix-sum deviation (`log2_mag + log2_freq`).
    pub log2_msd: f64,
    /// Mean task metric over the trials.
    pub value: f64,
}

fn worst_case_value(task: &dyn Task) -> f64 {
    if task.metric().higher_is_better() {
        0.0
    } else {
        f64::INFINITY
    }
}

/// Runs `trials` fault-injection trials of `task` with the given error model and target and
/// aggregates the metric.
pub fn injection_trials<T, M>(
    model: &Model,
    task: &T,
    make_model: &M,
    target: &Target,
    config: &StudyConfig,
) -> TrialSummary
where
    T: Task + Sync,
    M: Fn() -> realm_inject::error_model::BitFlipModel + Sync,
{
    let values: Vec<f64> = (0..config.trials)
        .into_par_iter()
        .map(|i| {
            let seed = rng::derive_seed(config.seed, i as u64);
            let mut injector = ErrorInjector::new(make_model(), target.clone(), seed);
            task.evaluate(model, &mut injector)
                .unwrap_or_else(|_| worst_case_value(task))
        })
        .collect();
    TrialSummary::from_values(&values)
}

fn fixed_bit_trials<T: Task + Sync>(
    model: &Model,
    task: &T,
    ber: f64,
    target: &Target,
    config: &StudyConfig,
) -> TrialSummary {
    let bit = config.bit;
    let values: Vec<f64> = (0..config.trials)
        .into_par_iter()
        .map(|i| {
            let seed = rng::derive_seed(config.seed, i as u64);
            let mut injector =
                ErrorInjector::new(FixedBitModel::new(ber, bit), target.clone(), seed);
            task.evaluate(model, &mut injector)
                .unwrap_or_else(|_| worst_case_value(task))
        })
        .collect();
    TrialSummary::from_values(&values)
}

/// Q1.1 — layer-wise resilience: errors are injected into every component of one layer at a
/// time while the BER is swept (Fig. 4(a)(b)).
pub fn layerwise_study<T: Task + Sync>(
    model: &Model,
    task: &T,
    layers: &[usize],
    bers: &[f64],
    config: &StudyConfig,
) -> Result<Vec<Series>> {
    validate_sweep("layers", layers.len())?;
    validate_sweep("bers", bers.len())?;
    Ok(layers
        .iter()
        .map(|&layer| Series {
            label: format!("layer{layer}"),
            points: bers
                .iter()
                .map(|&ber| {
                    let target = Target::new().layer(layer).stage(Stage::Prefill);
                    let summary = fixed_bit_trials(model, task, ber, &target, config);
                    SweepPoint {
                        x: ber,
                        value: summary.mean,
                        std: summary.std,
                    }
                })
                .collect(),
        })
        .collect())
}

/// Q1.2 — bit-wise resilience: a single component receives flips of one bit position while
/// the BER is swept (Fig. 4(c)(d)).
pub fn bitwise_study<T: Task + Sync>(
    model: &Model,
    task: &T,
    component: Component,
    bits: &[u8],
    bers: &[f64],
    config: &StudyConfig,
) -> Result<Vec<Series>> {
    validate_sweep("bits", bits.len())?;
    validate_sweep("bers", bers.len())?;
    Ok(bits
        .iter()
        .map(|&bit| Series {
            label: format!("bit {bit}"),
            points: bers
                .iter()
                .map(|&ber| {
                    let target = Target::new().component(component);
                    let cfg = StudyConfig { bit, ..*config };
                    let summary = fixed_bit_trials(model, task, ber, &target, &cfg);
                    SweepPoint {
                        x: ber,
                        value: summary.mean,
                        std: summary.std,
                    }
                })
                .collect(),
        })
        .collect())
}

/// Q1.3 / Q2.2 — component-wise resilience: each component receives bit-30 flips across all
/// layers while the BER is swept; `stage` selects prefill (Q1.3) or decode (Q2.2) injection
/// (Fig. 4(e)(f)(k)(l)).
pub fn componentwise_study<T: Task + Sync>(
    model: &Model,
    task: &T,
    components: &[Component],
    bers: &[f64],
    stage: Option<Stage>,
    config: &StudyConfig,
) -> Result<Vec<Series>> {
    validate_sweep("components", components.len())?;
    validate_sweep("bers", bers.len())?;
    Ok(components
        .iter()
        .map(|&component| Series {
            label: component.label().to_string(),
            points: bers
                .iter()
                .map(|&ber| {
                    let mut target = Target::new().component(component);
                    if let Some(stage) = stage {
                        target = target.stage(stage);
                    }
                    let summary = fixed_bit_trials(model, task, ber, &target, config);
                    SweepPoint {
                        x: ber,
                        value: summary.mean,
                        std: summary.std,
                    }
                })
                .collect(),
        })
        .collect())
}

/// Q1.4 — magnitude/frequency trade-off: controlled identical errors with `MSD = freq × mag`
/// are injected into one component (Fig. 4(g)(h)).
pub fn magfreq_study<T: Task + Sync>(
    model: &Model,
    task: &T,
    component: Component,
    log2_msds: &[u32],
    log2_freqs: &[u32],
    config: &StudyConfig,
) -> Result<Vec<MagFreqPoint>> {
    validate_sweep("log2_msds", log2_msds.len())?;
    validate_sweep("log2_freqs", log2_freqs.len())?;
    let mut grid = Vec::new();
    for &log2_msd in log2_msds {
        for &log2_freq in log2_freqs {
            if log2_freq >= log2_msd {
                continue; // magnitude would drop below one accumulator LSB
            }
            let log2_mag = log2_msd - log2_freq;
            let model_spec = MagFreqModel::new(1i64 << log2_mag, 1usize << log2_freq);
            let target = Target::new().component(component).stage(Stage::Prefill);
            let values: Vec<f64> = (0..config.trials)
                .into_par_iter()
                .map(|i| {
                    let seed = rng::derive_seed(config.seed, (log2_msd as u64) << 32 | i as u64);
                    let mut injector = ErrorInjector::new(model_spec, target.clone(), seed);
                    task.evaluate(model, &mut injector)
                        .unwrap_or_else(|_| worst_case_value(task))
                })
                .collect();
            let summary = TrialSummary::from_values(&values);
            grid.push(MagFreqPoint {
                log2_mag: log2_mag as f64,
                log2_freq: log2_freq as f64,
                log2_msd: log2_msd as f64,
                value: summary.mean,
            });
        }
    }
    Ok(grid)
}

/// Q2.1 — prefill vs decode sensitivity: the same error model targets only the prefill stage,
/// only the decode stage, or both (Fig. 4(i)(j)).
pub fn stagewise_study<T: Task + Sync>(
    model: &Model,
    task: &T,
    bers: &[f64],
    config: &StudyConfig,
) -> Result<Vec<Series>> {
    validate_sweep("bers", bers.len())?;
    let scopes: [(&str, Option<Stage>); 3] = [
        ("two_stage", None),
        ("prefill_stage", Some(Stage::Prefill)),
        ("decode_stage", Some(Stage::Decode)),
    ];
    Ok(scopes
        .iter()
        .map(|(label, stage)| Series {
            label: (*label).to_string(),
            points: bers
                .iter()
                .map(|&ber| {
                    let mut target = Target::new();
                    if let Some(stage) = stage {
                        target = target.stage(*stage);
                    }
                    let summary = fixed_bit_trials(model, task, ber, &target, config);
                    SweepPoint {
                        x: ber,
                        value: summary.mean,
                        std: summary.std,
                    }
                })
                .collect(),
        })
        .collect())
}

/// Report of the normalization-skew experiment (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormSkewReport {
    /// Mean of the clean pre-norm hidden state.
    pub clean_mean: f32,
    /// Standard deviation of the clean pre-norm hidden state.
    pub clean_std: f32,
    /// Mean after injecting a single error of the given magnitude.
    pub skewed_mean: f32,
    /// Standard deviation after injecting the error.
    pub skewed_std: f32,
    /// Fraction of post-normalization elements that moved by more than a tenth of the clean
    /// output's standard deviation — the "everything shifts" effect of Fig. 5(b).
    pub post_norm_disturbed_fraction: f32,
}

/// Fig. 5 — how one injected error before a normalization layer skews µ/σ and disturbs every
/// normalized element.
pub fn norm_skew_study(model: &Model, error_magnitude: f32, seed: u64) -> NormSkewReport {
    let hidden = model.config().hidden_size;
    let mut r = rng::seeded(rng::derive_seed(seed, 0xF165));
    // A representative pre-norm hidden state: embed a random token (outlier channels and all).
    use rand::Rng;
    let token = r.gen_range(0..model.config().vocab_size as u32);
    let clean = model
        .embed(&[token])
        .expect("token sampled from the vocabulary");
    let mut corrupted = clean.clone();
    let position = r.gen_range(0..hidden);
    corrupted[(0, position)] += error_magnitude;

    let norm = LayerNorm::identity(hidden);
    let clean_stats = norm.row_statistics(&clean)[0];
    let skewed_stats = norm.row_statistics(&corrupted)[0];
    let clean_out = norm.forward(&clean);
    let skewed_out = norm.forward(&corrupted);
    let clean_out_std = realm_tensor::stats::summary(&clean_out).std.max(1e-6);
    let disturbed = clean_out
        .row(0)
        .iter()
        .zip(skewed_out.row(0))
        .enumerate()
        .filter(|(c, (a, b))| *c != position && (**b - **a).abs() > 0.1 * clean_out_std)
        .count();
    NormSkewReport {
        clean_mean: clean_stats.0,
        clean_std: clean_stats.1,
        skewed_mean: skewed_stats.0,
        skewed_std: skewed_stats.1,
        post_norm_disturbed_fraction: disturbed as f32 / (hidden - 1) as f32,
    }
}

fn validate_sweep(name: &str, len: usize) -> Result<()> {
    if len == 0 {
        return Err(crate::CoreError::InvalidExperiment {
            detail: format!("the {name} sweep is empty"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_eval::lambada::LambadaTask;
    use realm_eval::wikitext::WikitextTask;
    use realm_llm::config::ModelConfig;

    fn setup() -> (Model, WikitextTask) {
        let model = Model::new(&ModelConfig::tiny_opt(), 7).unwrap();
        let task = WikitextTask::quick(model.language(), 7);
        (model, task)
    }

    #[test]
    fn componentwise_study_reveals_sensitivity_ordering() {
        let (model, task) = setup();
        let config = StudyConfig::quick(3);
        let series = componentwise_study(
            &model,
            &task,
            &[Component::QkT, Component::O],
            &[5e-3],
            Some(Stage::Prefill),
            &config,
        )
        .unwrap();
        assert_eq!(series.len(), 2);
        let qkt = series[0].points[0].value;
        let o = series[1].points[0].value;
        assert!(
            o > qkt,
            "O (post-norm) must degrade perplexity more than the softmax-bounded QK^T: {o} vs {qkt}"
        );
    }

    #[test]
    fn layerwise_study_produces_one_series_per_layer() {
        let (model, task) = setup();
        let config = StudyConfig::quick(3);
        let series = layerwise_study(&model, &task, &[0, 1], &[1e-4, 1e-2], &config).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].label, "layer0");
        // Degradation grows with BER within each layer's series.
        for s in &series {
            assert!(s.points[1].value >= s.points[0].value * 0.5);
        }
    }

    #[test]
    fn bitwise_study_shows_low_bits_are_harmless() {
        let (model, task) = setup();
        let config = StudyConfig::quick(5);
        let series =
            bitwise_study(&model, &task, Component::O, &[4, 30], &[1e-2], &config).unwrap();
        let low_bit = series[0].points[0].value;
        let high_bit = series[1].points[0].value;
        assert!(
            high_bit > low_bit,
            "bit-30 flips ({high_bit}) must hurt more than bit-4 flips ({low_bit})"
        );
    }

    #[test]
    fn magfreq_study_covers_the_grid_below_the_msd_diagonal() {
        let (model, task) = setup();
        let config = StudyConfig::quick(2);
        let grid =
            magfreq_study(&model, &task, Component::K, &[20, 24], &[0, 2, 30], &config).unwrap();
        // log2_freq = 30 exceeds both MSDs and is skipped.
        assert_eq!(grid.len(), 4);
        for p in &grid {
            assert_eq!(p.log2_mag + p.log2_freq, p.log2_msd);
            assert!(p.value.is_finite());
        }
    }

    #[test]
    fn stagewise_study_reports_three_scopes() {
        let model = Model::new(&ModelConfig::tiny_opt(), 9).unwrap();
        let task = LambadaTask::quick(model.language(), 9);
        let config = StudyConfig::quick(2);
        let series = stagewise_study(&model, &task, &[1e-3], &config).unwrap();
        assert_eq!(series.len(), 3);
        let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["two_stage", "prefill_stage", "decode_stage"]);
    }

    #[test]
    fn norm_skew_study_shows_statistics_blowup() {
        let model = Model::new(&ModelConfig::tiny_opt(), 9).unwrap();
        let report = norm_skew_study(&model, 500.0, 3);
        assert!(report.skewed_std > report.clean_std * 2.0);
        assert!(report.post_norm_disturbed_fraction > 0.5);
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        let (model, task) = setup();
        let config = StudyConfig::quick(1);
        assert!(layerwise_study(&model, &task, &[], &[1e-3], &config).is_err());
        assert!(componentwise_study(&model, &task, &[Component::O], &[], None, &config).is_err());
    }
}
