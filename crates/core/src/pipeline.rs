//! Protected-inference pipeline: task quality and total energy at a given operating voltage.
//!
//! One pipeline run answers the question the evaluation asks over and over (Fig. 9, Fig. 10,
//! Table II): *if the systolic array runs at voltage V with protection scheme S, what task
//! quality does the model deliver and how much energy does the whole thing cost, recoveries
//! included?* The run wires together:
//!
//! * the voltage→BER curve and an [`ErrorInjector`] emulating the faulty datapath,
//! * a [`SchemeProtector`] performing detection and recovery,
//! * the task evaluation itself,
//! * the systolic-array area/power model and the energy model for the final accounting.

use crate::protection::{RegionAssignment, SchemeProtector, SequenceAttribution, ShardAttribution};
use crate::{CoreError, Result};
use realm_eval::task::Task;
use realm_inject::{
    campaign::run_trials_with, error_model::BitFlipModel, injector::ErrorInjector,
    targeting::Target, VoltageBerCurve,
};
use realm_llm::hooks::HookChain;
use realm_llm::model::GenerationOutput;
use realm_llm::{Component, Model};
use realm_systolic::{
    energy::WorkloadSpec, AreaPowerModel, EnergyModel, ProtectionScheme, SystolicArray,
};
use realm_tensor::EngineKind;
use serde::{Deserialize, Serialize};

/// Configuration of a protected-inference pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The systolic array executing the GEMMs.
    pub array: SystolicArray,
    /// Voltage → BER relationship of the datapath.
    pub curve: VoltageBerCurve,
    /// Dynamic-energy model of the array.
    pub energy: EnergyModel,
    /// Which components receive injected errors (and therefore need protection). The paper's
    /// evaluation protects one component at a time (e.g. `K` in OPT-1.3B); `None` means
    /// errors are injected everywhere.
    pub protected_component: Option<Component>,
    /// Number of lower accumulator bits excluded from injection (timing errors favour the
    /// high bits); 16 matches the high-bit model used in the characterization.
    pub min_error_bit: u8,
    /// GEMM execution backend for the protector's recovery recomputation. All backends are
    /// bit-exact, so this only changes how fast the sweeps run; it defaults to
    /// [`EngineKind::auto`] (the SIMD parallel backend on AVX2 hosts) like the models
    /// themselves.
    pub engine: EngineKind,
    /// Number of sequences batched trials run together (see
    /// [`ProtectedPipeline::run_batched`]). `1` reproduces the sequential behaviour; larger
    /// batches amortise checksum and detection cost across the batch.
    pub batch_size: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            array: SystolicArray::paper_256x256_ws(),
            curve: VoltageBerCurve::default_14nm(),
            energy: EnergyModel::default_14nm(),
            protected_component: None,
            min_error_bit: 16,
            engine: EngineKind::auto(),
            batch_size: 1,
        }
    }
}

impl PipelineConfig {
    /// Restricts injection and protection to a single network component.
    pub fn for_component(component: Component) -> Self {
        Self {
            protected_component: Some(component),
            ..Self::default()
        }
    }

    /// Sets the batch width used by batched trials.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

/// Outcome of one protected-inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Protection scheme that was active.
    pub scheme: ProtectionScheme,
    /// Operating voltage of the run.
    pub voltage: f64,
    /// Bit-error rate implied by the voltage.
    pub ber: f64,
    /// Task metric value measured through the faulty, protected datapath.
    pub task_value: f64,
    /// Number of GEMMs inspected by the protector.
    pub gemms_inspected: u64,
    /// Number of recoveries the protector triggered.
    pub recoveries: u64,
    /// MACs of the main computation.
    pub compute_macs: u64,
    /// MACs re-executed by recoveries.
    pub recovery_macs: u64,
    /// Extra cycles spent on recovery.
    pub recovery_cycles: u64,
    /// Energy breakdown of the run.
    pub energy: realm_systolic::energy::WorkloadEnergy,
}

impl PipelineOutcome {
    /// Fraction of inspected GEMMs that triggered recovery.
    pub fn recovery_rate(&self) -> f64 {
        if self.gemms_inspected == 0 {
            0.0
        } else {
            self.recoveries as f64 / self.gemms_inspected as f64
        }
    }
}

/// Outcome of one batched protected-generation trial.
///
/// One trial runs a whole batch of sequences through shared prefill and lockstep decode
/// under injection and protection, so detection statistics are batch-wide while
/// `per_sequence` carries the checksum-based attribution of every detection/recovery back
/// to the batch index it originated from.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedGenerationOutcome {
    /// Protection scheme that was active.
    pub scheme: ProtectionScheme,
    /// Operating voltage of the run.
    pub voltage: f64,
    /// Bit-error rate implied by the voltage.
    pub ber: f64,
    /// Generated tokens and margins, one entry per batch sequence in order.
    pub outputs: Vec<GenerationOutput>,
    /// Number of GEMMs inspected by the protector (shared GEMMs count once per batch).
    pub gemms_inspected: u64,
    /// Number of recoveries the protector triggered.
    pub recoveries: u64,
    /// Total number of injected errors.
    pub errors_injected: u64,
    /// Detection/recovery attribution per batch sequence index (dense, one per sequence).
    pub per_sequence: Vec<SequenceAttribution>,
    /// Detection/recovery attribution per tensor-parallel shard (dense, one per shard;
    /// empty when the model is unsharded). Sharding is bit-exact, so the *verdicts* are
    /// identical to an unsharded run — this only localizes them to fault domains.
    pub per_shard: Vec<ShardAttribution>,
}

impl BatchedGenerationOutcome {
    /// Detector inspections per generated token across the whole batch — the amortisation
    /// figure batching exists for (lower is better).
    pub fn inspections_per_token(&self) -> f64 {
        let tokens: usize = self.outputs.iter().map(|o| o.tokens.len()).sum();
        if tokens == 0 {
            0.0
        } else {
            self.gemms_inspected as f64 / tokens as f64
        }
    }
}

/// A reusable protected-inference pipeline bound to one model.
///
/// Every run owns a single scratch [`realm_tensor::Workspace`] for its whole generation
/// loop (threaded through `Model::generate` / `BatchScheduler::run` internally), and the
/// [`SchemeProtector`] reuses its detection buffers across inspections — so an injection
/// campaign of thousands of trials no longer churns the allocator once its pools are warm.
pub struct ProtectedPipeline<'m> {
    model: &'m Model,
    config: PipelineConfig,
    regions: RegionAssignment,
}

impl<'m> ProtectedPipeline<'m> {
    /// Creates a pipeline with default (class-based) critical regions.
    pub fn new(model: &'m Model, config: PipelineConfig) -> Self {
        Self {
            model,
            config,
            regions: RegionAssignment::new(),
        }
    }

    /// Creates a pipeline with explicitly fitted critical regions.
    pub fn with_regions(
        model: &'m Model,
        config: PipelineConfig,
        regions: RegionAssignment,
    ) -> Self {
        Self {
            model,
            config,
            regions,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs `task` at `voltage` under `scheme` and returns quality plus energy accounting.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for non-positive voltages and propagates task
    /// evaluation errors.
    pub fn run(
        &self,
        task: &dyn Task,
        scheme: ProtectionScheme,
        voltage: f64,
        seed: u64,
    ) -> Result<PipelineOutcome> {
        if voltage <= 0.0 {
            return Err(CoreError::InvalidExperiment {
                detail: format!("operating voltage must be positive, got {voltage}"),
            });
        }
        let ber = self.config.curve.ber_at(voltage);
        let target = match self.config.protected_component {
            Some(component) => Target::new().component(component),
            None => Target::everything(),
        };
        let mut injector = ErrorInjector::new(
            BitFlipModel::with_bit_range(ber, self.config.min_error_bit, 32),
            target,
            seed,
        );
        let mut protector = SchemeProtector::with_engine(
            scheme,
            self.config.array,
            &self.regions,
            self.config.engine.build(),
        );
        protector.set_shard_attribution(self.model.tp_group().map(|g| g.degree()));

        let task_value = {
            let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
            task.evaluate(self.model, &mut chain)
                .map_err(CoreError::from)?
        };

        let injection_stats = injector.stats();
        let recovery_stats = protector.stats();
        // Total MACs of the main computation: every GEMM the injector observed, whether or
        // not it was targeted, runs on the array at the scaled voltage.
        let compute_macs = self.workload_macs();
        let area_power = AreaPowerModel::default_14nm(&self.config.array);
        let spec = WorkloadSpec {
            macs: compute_macs,
            voltage,
            detection_power_fraction: area_power.detection_power_fraction(scheme),
            recovery_macs: recovery_stats.recovery_macs,
            recovery_voltage: self.config.energy.nominal_voltage,
        };
        let energy = self.config.energy.workload_energy(&spec);
        Ok(PipelineOutcome {
            scheme,
            voltage,
            ber,
            task_value,
            gemms_inspected: recovery_stats
                .gemms_inspected
                .max(injection_stats.gemms_observed),
            recoveries: recovery_stats.recoveries_triggered,
            compute_macs,
            recovery_macs: recovery_stats.recovery_macs,
            recovery_cycles: recovery_stats.recovery_cycles,
            energy,
        })
    }

    /// Runs one batched protected-generation trial: all `prompts` share prefill GEMMs and
    /// lockstep decode under injection at `voltage` with protection scheme `scheme`.
    ///
    /// Detections and recoveries are attributed back to the originating batch sequence via
    /// the per-row-group checksum re-reduction (see
    /// [`SchemeProtector::sequence_attribution`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for non-positive voltages or an empty
    /// prompt list, and propagates model errors.
    pub fn run_generation_batch(
        &self,
        prompts: &[Vec<u32>],
        new_tokens: usize,
        scheme: ProtectionScheme,
        voltage: f64,
        seed: u64,
    ) -> Result<BatchedGenerationOutcome> {
        if voltage <= 0.0 {
            return Err(CoreError::InvalidExperiment {
                detail: format!("operating voltage must be positive, got {voltage}"),
            });
        }
        if prompts.is_empty() {
            return Err(CoreError::InvalidExperiment {
                detail: "batched generation needs at least one prompt".into(),
            });
        }
        let ber = self.config.curve.ber_at(voltage);
        let target = match self.config.protected_component {
            Some(component) => Target::new().component(component),
            None => Target::everything(),
        };
        let mut injector = ErrorInjector::new(
            BitFlipModel::with_bit_range(ber, self.config.min_error_bit, 32),
            target,
            seed,
        );
        let mut protector = SchemeProtector::with_engine(
            scheme,
            self.config.array,
            &self.regions,
            self.config.engine.build(),
        );
        let tp_degree = self.model.tp_group().map(|g| g.degree());
        protector.set_shard_attribution(tp_degree);
        let outputs = {
            let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
            self.model
                .generate_batch(prompts, new_tokens, &mut chain)
                .map_err(CoreError::from)?
        };
        let per_sequence = (0..prompts.len())
            .map(|seq| {
                protector
                    .sequence_attribution()
                    .get(&seq)
                    .copied()
                    .unwrap_or_default()
            })
            .collect();
        let per_shard = (0..tp_degree.unwrap_or(0))
            .map(|shard| {
                protector
                    .shard_attribution()
                    .get(&shard)
                    .copied()
                    .unwrap_or_default()
            })
            .collect();
        Ok(BatchedGenerationOutcome {
            scheme,
            voltage,
            ber,
            outputs,
            gemms_inspected: protector.stats().gemms_inspected,
            recoveries: protector.stats().recoveries_triggered,
            errors_injected: injector.stats().errors_injected,
            per_sequence,
            per_shard,
        })
    }

    /// Runs one batched trial on [`PipelineConfig::batch_size`] synthetic ragged prompts
    /// drawn deterministically from the model's language and `seed`.
    ///
    /// This is the entry point sweeps use to run batched trials without hand-building
    /// prompt sets; [`ProtectedPipeline::run_batched_campaign`] fans it out.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`ProtectedPipeline::run_generation_batch`].
    pub fn run_batched(
        &self,
        scheme: ProtectionScheme,
        voltage: f64,
        seed: u64,
    ) -> Result<BatchedGenerationOutcome> {
        let prompts = self.synthetic_batch_prompts(seed);
        let new_tokens = (self.model.config().max_seq_len / 4).max(1);
        self.run_generation_batch(&prompts, new_tokens, scheme, voltage, seed)
    }

    /// Runs `trials` independent batched trials in parallel with deterministic per-trial
    /// seeds and returns every outcome (per-sequence attribution included).
    ///
    /// # Errors
    ///
    /// Propagates the first trial error encountered.
    pub fn run_batched_campaign(
        &self,
        scheme: ProtectionScheme,
        voltage: f64,
        trials: usize,
        base_seed: u64,
    ) -> Result<Vec<BatchedGenerationOutcome>> {
        run_trials_with(trials, base_seed, |seed| {
            self.run_batched(scheme, voltage, seed)
        })
        .into_iter()
        .collect()
    }

    /// Deterministic ragged prompts for batched trials: `batch_size` chains of the model's
    /// synthetic language with lengths cycling between 4 and 11 tokens.
    fn synthetic_batch_prompts(&self, seed: u64) -> Vec<Vec<u32>> {
        let language = self.model.language();
        let vocab = self.model.config().vocab_size as u64;
        let max_prompt = (self.model.config().max_seq_len / 2).max(2);
        (0..self.config.batch_size.max(1))
            .map(|i| {
                let len = (4 + (seed as usize + 3 * i) % 8).min(max_prompt);
                let mut prompt = vec![((seed + i as u64 * 17) % vocab) as u32];
                while prompt.len() < len {
                    prompt.push(language.successor(*prompt.last().expect("non-empty")));
                }
                prompt
            })
            .collect()
    }

    /// Clean-reference value of a task (no injection, no protection).
    ///
    /// # Errors
    ///
    /// Propagates task evaluation errors.
    pub fn clean_value(&self, task: &dyn Task) -> Result<f64> {
        task.evaluate(self.model, &mut realm_llm::NoopHook)
            .map_err(CoreError::from)
    }

    fn workload_macs(&self) -> u64 {
        // A representative workload unit: one prefill of half the context window. The energy
        // comparison across schemes and voltages only needs a consistent workload definition.
        self.model.prefill_macs(self.model.config().max_seq_len / 2)
    }
}

impl std::fmt::Debug for ProtectedPipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedPipeline")
            .field("model", &self.model.config().name)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_eval::wikitext::WikitextTask;
    use realm_llm::config::ModelConfig;
    use realm_systolic::Dataflow;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            array: SystolicArray::small(Dataflow::WeightStationary),
            ..PipelineConfig::default()
        }
    }

    fn setup() -> (Model, WikitextTask) {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        (model, task)
    }

    #[test]
    fn nominal_voltage_run_matches_clean_quality() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::None, 0.9, 11)
            .unwrap();
        assert!((outcome.task_value - clean).abs() < 1e-6);
        assert_eq!(outcome.recoveries, 0);
        assert!(outcome.ber < 1e-9);
        assert!(outcome.energy.total_j() > 0.0);
    }

    #[test]
    fn unprotected_low_voltage_degrades_quality() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::None, 0.58, 11)
            .unwrap();
        assert!(outcome.ber > 1e-4);
        assert!(
            outcome.task_value > clean + 1.0,
            "perplexity should degrade without protection (clean {clean}, got {})",
            outcome.task_value
        );
    }

    #[test]
    fn classical_abft_preserves_quality_but_pays_recovery_energy() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::ClassicalAbft, 0.60, 13)
            .unwrap();
        assert!(
            (outcome.task_value - clean).abs() < 0.5,
            "classical ABFT repairs quality (clean {clean}, got {})",
            outcome.task_value
        );
        assert!(outcome.recoveries > 0);
        assert!(outcome.energy.recovery_j > 0.0);
        assert!(outcome.recovery_rate() > 0.0);
    }

    #[test]
    fn statistical_abft_spends_less_recovery_energy_than_classical() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let classical = pipeline
            .run(&task, ProtectionScheme::ClassicalAbft, 0.66, 21)
            .unwrap();
        let statistical = pipeline
            .run(&task, ProtectionScheme::StatisticalAbft, 0.66, 21)
            .unwrap();
        assert!(
            statistical.recovery_macs < classical.recovery_macs,
            "statistical ABFT recomputes less ({} vs {})",
            statistical.recovery_macs,
            classical.recovery_macs
        );
        assert!(statistical.energy.total_j() <= classical.energy.total_j());
    }

    #[test]
    fn batched_generation_amortises_inspections_and_preserves_output() {
        let (model, _) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9], vec![2]];
        let clean = model
            .generate_batch(&prompts, 4, &mut realm_llm::NoopHook)
            .unwrap();

        let batched = pipeline
            .run_generation_batch(&prompts, 4, ProtectionScheme::ClassicalAbft, 0.60, 7)
            .unwrap();
        assert_eq!(batched.outputs.len(), 4);
        assert_eq!(batched.per_sequence.len(), 4);
        assert!(batched.errors_injected > 0);
        assert!(batched.recoveries > 0);
        assert_eq!(
            batched.outputs, clean,
            "classical ABFT repairs the batched faulty run to the clean tokens"
        );

        // Sequentially protected runs inspect each sequence's shared GEMMs separately, so
        // the batched run must inspect strictly fewer GEMMs for the same tokens.
        let mut sequential_inspected = 0;
        for prompt in &prompts {
            let outcome = pipeline
                .run_generation_batch(
                    std::slice::from_ref(prompt),
                    4,
                    ProtectionScheme::ClassicalAbft,
                    0.60,
                    7,
                )
                .unwrap();
            sequential_inspected += outcome.gemms_inspected;
        }
        assert!(
            batched.gemms_inspected < sequential_inspected,
            "batching amortises inspections ({} vs {sequential_inspected})",
            batched.gemms_inspected
        );
        assert!(batched.inspections_per_token() > 0.0);
    }

    #[test]
    fn batched_campaign_runs_deterministic_trials() {
        let (model, _) = setup();
        let config = small_config().with_batch_size(3);
        assert_eq!(config.batch_size, 3);
        let pipeline = ProtectedPipeline::new(&model, config);
        let a = pipeline
            .run_batched_campaign(ProtectionScheme::StatisticalAbft, 0.62, 4, 11)
            .unwrap();
        let b = pipeline
            .run_batched_campaign(ProtectionScheme::StatisticalAbft, 0.62, 4, 11)
            .unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "same base seed reproduces the whole campaign");
        for outcome in &a {
            assert_eq!(outcome.outputs.len(), 3);
            assert_eq!(outcome.per_sequence.len(), 3);
        }
        assert!(pipeline
            .run_generation_batch(&[], 4, ProtectionScheme::None, 0.9, 1)
            .is_err());
    }

    #[test]
    fn sharded_pipeline_reports_per_shard_attribution() {
        let mut config = ModelConfig::tiny_opt();
        config.tp_degree = 2;
        let model = Model::new(&config, 3).unwrap();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let prompts: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5]];
        let outcome = pipeline
            .run_generation_batch(&prompts, 4, ProtectionScheme::ClassicalAbft, 0.60, 7)
            .unwrap();
        assert_eq!(outcome.per_shard.len(), 2, "dense, one entry per shard");
        assert!(outcome.recoveries > 0);
        let attributed: u64 = outcome.per_shard.iter().map(|a| a.detections).sum();
        assert!(
            attributed > 0,
            "low-voltage faults must localize to shard stripes"
        );

        // The unsharded model reports no shard axis at all — and, sharding being
        // bit-exact, produces the same tokens under the same faults.
        let unsharded = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let pipeline = ProtectedPipeline::new(&unsharded, small_config());
        let baseline = pipeline
            .run_generation_batch(&prompts, 4, ProtectionScheme::ClassicalAbft, 0.60, 7)
            .unwrap();
        assert!(baseline.per_shard.is_empty());
        assert_eq!(baseline.outputs, outcome.outputs);
    }

    #[test]
    fn invalid_voltage_is_rejected() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        assert!(pipeline.run(&task, ProtectionScheme::None, 0.0, 1).is_err());
    }

    #[test]
    fn component_scoped_pipeline_only_targets_that_component() {
        let (model, task) = setup();
        let config = PipelineConfig {
            array: SystolicArray::small(Dataflow::WeightStationary),
            ..PipelineConfig::for_component(Component::K)
        };
        let pipeline = ProtectedPipeline::new(&model, config);
        let outcome = pipeline
            .run(&task, ProtectionScheme::StatisticalAbft, 0.62, 5)
            .unwrap();
        assert!(outcome.task_value.is_finite());
    }
}
