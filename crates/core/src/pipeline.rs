//! Protected-inference pipeline: task quality and total energy at a given operating voltage.
//!
//! One pipeline run answers the question the evaluation asks over and over (Fig. 9, Fig. 10,
//! Table II): *if the systolic array runs at voltage V with protection scheme S, what task
//! quality does the model deliver and how much energy does the whole thing cost, recoveries
//! included?* The run wires together:
//!
//! * the voltage→BER curve and an [`ErrorInjector`] emulating the faulty datapath,
//! * a [`SchemeProtector`] performing detection and recovery,
//! * the task evaluation itself,
//! * the systolic-array area/power model and the energy model for the final accounting.

use crate::protection::{RegionAssignment, SchemeProtector};
use crate::{CoreError, Result};
use realm_eval::task::Task;
use realm_inject::{
    error_model::BitFlipModel, injector::ErrorInjector, targeting::Target, VoltageBerCurve,
};
use realm_llm::hooks::HookChain;
use realm_llm::{Component, Model};
use realm_systolic::{
    energy::WorkloadSpec, AreaPowerModel, EnergyModel, ProtectionScheme, SystolicArray,
};
use realm_tensor::EngineKind;
use serde::{Deserialize, Serialize};

/// Configuration of a protected-inference pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// The systolic array executing the GEMMs.
    pub array: SystolicArray,
    /// Voltage → BER relationship of the datapath.
    pub curve: VoltageBerCurve,
    /// Dynamic-energy model of the array.
    pub energy: EnergyModel,
    /// Which components receive injected errors (and therefore need protection). The paper's
    /// evaluation protects one component at a time (e.g. `K` in OPT-1.3B); `None` means
    /// errors are injected everywhere.
    pub protected_component: Option<Component>,
    /// Number of lower accumulator bits excluded from injection (timing errors favour the
    /// high bits); 16 matches the high-bit model used in the characterization.
    pub min_error_bit: u8,
    /// GEMM execution backend for the protector's recovery recomputation. All backends are
    /// bit-exact, so this only changes how fast the sweeps run; it defaults to the parallel
    /// backend like the models themselves.
    pub engine: EngineKind,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            array: SystolicArray::paper_256x256_ws(),
            curve: VoltageBerCurve::default_14nm(),
            energy: EnergyModel::default_14nm(),
            protected_component: None,
            min_error_bit: 16,
            engine: EngineKind::Parallel,
        }
    }
}

impl PipelineConfig {
    /// Restricts injection and protection to a single network component.
    pub fn for_component(component: Component) -> Self {
        Self {
            protected_component: Some(component),
            ..Self::default()
        }
    }
}

/// Outcome of one protected-inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Protection scheme that was active.
    pub scheme: ProtectionScheme,
    /// Operating voltage of the run.
    pub voltage: f64,
    /// Bit-error rate implied by the voltage.
    pub ber: f64,
    /// Task metric value measured through the faulty, protected datapath.
    pub task_value: f64,
    /// Number of GEMMs inspected by the protector.
    pub gemms_inspected: u64,
    /// Number of recoveries the protector triggered.
    pub recoveries: u64,
    /// MACs of the main computation.
    pub compute_macs: u64,
    /// MACs re-executed by recoveries.
    pub recovery_macs: u64,
    /// Extra cycles spent on recovery.
    pub recovery_cycles: u64,
    /// Energy breakdown of the run.
    pub energy: realm_systolic::energy::WorkloadEnergy,
}

impl PipelineOutcome {
    /// Fraction of inspected GEMMs that triggered recovery.
    pub fn recovery_rate(&self) -> f64 {
        if self.gemms_inspected == 0 {
            0.0
        } else {
            self.recoveries as f64 / self.gemms_inspected as f64
        }
    }
}

/// A reusable protected-inference pipeline bound to one model.
pub struct ProtectedPipeline<'m> {
    model: &'m Model,
    config: PipelineConfig,
    regions: RegionAssignment,
}

impl<'m> ProtectedPipeline<'m> {
    /// Creates a pipeline with default (class-based) critical regions.
    pub fn new(model: &'m Model, config: PipelineConfig) -> Self {
        Self {
            model,
            config,
            regions: RegionAssignment::new(),
        }
    }

    /// Creates a pipeline with explicitly fitted critical regions.
    pub fn with_regions(
        model: &'m Model,
        config: PipelineConfig,
        regions: RegionAssignment,
    ) -> Self {
        Self {
            model,
            config,
            regions,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs `task` at `voltage` under `scheme` and returns quality plus energy accounting.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for non-positive voltages and propagates task
    /// evaluation errors.
    pub fn run(
        &self,
        task: &dyn Task,
        scheme: ProtectionScheme,
        voltage: f64,
        seed: u64,
    ) -> Result<PipelineOutcome> {
        if voltage <= 0.0 {
            return Err(CoreError::InvalidExperiment {
                detail: format!("operating voltage must be positive, got {voltage}"),
            });
        }
        let ber = self.config.curve.ber_at(voltage);
        let target = match self.config.protected_component {
            Some(component) => Target::new().component(component),
            None => Target::everything(),
        };
        let mut injector = ErrorInjector::new(
            BitFlipModel::with_bit_range(ber, self.config.min_error_bit, 32),
            target,
            seed,
        );
        let mut protector = SchemeProtector::with_engine(
            scheme,
            self.config.array,
            &self.regions,
            self.config.engine.build(),
        );

        let task_value = {
            let mut chain = HookChain::new().with(&mut injector).with(&mut protector);
            task.evaluate(self.model, &mut chain)
                .map_err(CoreError::from)?
        };

        let injection_stats = injector.stats();
        let recovery_stats = protector.stats();
        // Total MACs of the main computation: every GEMM the injector observed, whether or
        // not it was targeted, runs on the array at the scaled voltage.
        let compute_macs = self.workload_macs();
        let area_power = AreaPowerModel::default_14nm(&self.config.array);
        let spec = WorkloadSpec {
            macs: compute_macs,
            voltage,
            detection_power_fraction: area_power.detection_power_fraction(scheme),
            recovery_macs: recovery_stats.recovery_macs,
            recovery_voltage: self.config.energy.nominal_voltage,
        };
        let energy = self.config.energy.workload_energy(&spec);
        Ok(PipelineOutcome {
            scheme,
            voltage,
            ber,
            task_value,
            gemms_inspected: recovery_stats
                .gemms_inspected
                .max(injection_stats.gemms_observed),
            recoveries: recovery_stats.recoveries_triggered,
            compute_macs,
            recovery_macs: recovery_stats.recovery_macs,
            recovery_cycles: recovery_stats.recovery_cycles,
            energy,
        })
    }

    /// Clean-reference value of a task (no injection, no protection).
    ///
    /// # Errors
    ///
    /// Propagates task evaluation errors.
    pub fn clean_value(&self, task: &dyn Task) -> Result<f64> {
        task.evaluate(self.model, &mut realm_llm::NoopHook)
            .map_err(CoreError::from)
    }

    fn workload_macs(&self) -> u64 {
        // A representative workload unit: one prefill of half the context window. The energy
        // comparison across schemes and voltages only needs a consistent workload definition.
        self.model.prefill_macs(self.model.config().max_seq_len / 2)
    }
}

impl std::fmt::Debug for ProtectedPipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedPipeline")
            .field("model", &self.model.config().name)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_eval::wikitext::WikitextTask;
    use realm_llm::config::ModelConfig;
    use realm_systolic::Dataflow;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            array: SystolicArray::small(Dataflow::WeightStationary),
            ..PipelineConfig::default()
        }
    }

    fn setup() -> (Model, WikitextTask) {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        (model, task)
    }

    #[test]
    fn nominal_voltage_run_matches_clean_quality() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::None, 0.9, 11)
            .unwrap();
        assert!((outcome.task_value - clean).abs() < 1e-6);
        assert_eq!(outcome.recoveries, 0);
        assert!(outcome.ber < 1e-9);
        assert!(outcome.energy.total_j() > 0.0);
    }

    #[test]
    fn unprotected_low_voltage_degrades_quality() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::None, 0.58, 11)
            .unwrap();
        assert!(outcome.ber > 1e-4);
        assert!(
            outcome.task_value > clean + 1.0,
            "perplexity should degrade without protection (clean {clean}, got {})",
            outcome.task_value
        );
    }

    #[test]
    fn classical_abft_preserves_quality_but_pays_recovery_energy() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let clean = pipeline.clean_value(&task).unwrap();
        let outcome = pipeline
            .run(&task, ProtectionScheme::ClassicalAbft, 0.60, 13)
            .unwrap();
        assert!(
            (outcome.task_value - clean).abs() < 0.5,
            "classical ABFT repairs quality (clean {clean}, got {})",
            outcome.task_value
        );
        assert!(outcome.recoveries > 0);
        assert!(outcome.energy.recovery_j > 0.0);
        assert!(outcome.recovery_rate() > 0.0);
    }

    #[test]
    fn statistical_abft_spends_less_recovery_energy_than_classical() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        let classical = pipeline
            .run(&task, ProtectionScheme::ClassicalAbft, 0.66, 21)
            .unwrap();
        let statistical = pipeline
            .run(&task, ProtectionScheme::StatisticalAbft, 0.66, 21)
            .unwrap();
        assert!(
            statistical.recovery_macs < classical.recovery_macs,
            "statistical ABFT recomputes less ({} vs {})",
            statistical.recovery_macs,
            classical.recovery_macs
        );
        assert!(statistical.energy.total_j() <= classical.energy.total_j());
    }

    #[test]
    fn invalid_voltage_is_rejected() {
        let (model, task) = setup();
        let pipeline = ProtectedPipeline::new(&model, small_config());
        assert!(pipeline.run(&task, ProtectionScheme::None, 0.0, 1).is_err());
    }

    #[test]
    fn component_scoped_pipeline_only_targets_that_component() {
        let (model, task) = setup();
        let config = PipelineConfig {
            array: SystolicArray::small(Dataflow::WeightStationary),
            ..PipelineConfig::for_component(Component::K)
        };
        let pipeline = ProtectedPipeline::new(&model, config);
        let outcome = pipeline
            .run(&task, ProtectionScheme::StatisticalAbft, 0.62, 5)
            .unwrap();
        assert!(outcome.task_value.is_finite());
    }
}
