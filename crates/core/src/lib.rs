//! # realm-core
//!
//! The ReaLM algorithm/circuit co-design framework: this crate ties the substrates together
//! into the workflow the paper describes.
//!
//! 1. **Characterize** ([`characterize`]) — large-scale statistical error injection into a
//!    quantized LLM, answering the paper's research questions Q1.1–Q2.2 (layer-wise,
//!    bit-wise, component-wise, magnitude/frequency, prefill-vs-decode resilience).
//! 2. **Fit** ([`fit`]) — turn the magnitude/frequency characterization into per-component
//!    critical regions (`a`, `b`, `θ_freq`) under an acceptable-degradation budget.
//! 3. **Protect** ([`protection`]) — run inference with a protection scheme attached to every
//!    quantized GEMM: an error injector emulates the faulty low-voltage datapath, a detector
//!    (classical / Approx / statistical ABFT, DMR, Razor, ThunderVolt) inspects checksums and
//!    triggers recovery, and recovery statistics are accumulated.
//! 4. **Evaluate** ([`pipeline`], [`sweep`]) — measure task quality and total energy across
//!    operating voltages, find per-component sweet spots (Table II), and explore the
//!    performance/energy trade-off (Fig. 9, Fig. 10).
//!
//! # Example
//!
//! ```
//! use realm_core::pipeline::{PipelineConfig, ProtectedPipeline};
//! use realm_eval::wikitext::WikitextTask;
//! use realm_llm::{config::ModelConfig, model::Model};
//! use realm_systolic::ProtectionScheme;
//!
//! # fn main() -> Result<(), realm_core::CoreError> {
//! let model = Model::new(&ModelConfig::tiny_opt(), 1)?;
//! let task = WikitextTask::quick(model.language(), 1);
//! let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
//! let outcome = pipeline.run(&task, ProtectionScheme::StatisticalAbft, 0.72, 7)?;
//! assert!(outcome.task_value.is_finite());
//! assert!(outcome.energy.total_j() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod characterize;
pub mod fit;
pub mod pipeline;
pub mod protection;
pub mod report;
pub mod sweep;

mod error;

pub use error::CoreError;
pub use pipeline::{BatchedGenerationOutcome, PipelineConfig, PipelineOutcome, ProtectedPipeline};
pub use protection::{ProtectionPolicy, SchemeProtector, SequenceAttribution, ShardAttribution};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
