//! Plain-text reporting helpers shared by the benchmark harnesses and examples.
//!
//! Every figure/table binary in `realm-bench` prints its results as aligned text tables so
//! that the regenerated numbers can be compared against the paper side by side (and diffed
//! between runs). Keeping the formatting here avoids re-implementing it in each binary.

use crate::characterize::Series;
use crate::pipeline::PipelineOutcome;
use crate::sweep::{ComponentSweetSpot, VoltageSweep};

/// Renders a simple aligned table: a header row followed by data rows.
///
/// Column widths adapt to the longest cell; all cells are right-aligned except the first
/// column, which is left-aligned (it usually holds labels).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let format_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&format_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a characterization series set (one figure panel) as a table: one row per x value,
/// one column per series.
pub fn render_series_table(x_label: &str, series: &[Series]) -> String {
    if series.is_empty() {
        return String::from("(empty)\n");
    }
    let mut header = vec![x_label];
    for s in series {
        header.push(s.label.as_str());
    }
    let point_count = series[0].points.len();
    let mut rows = Vec::with_capacity(point_count);
    for i in 0..point_count {
        let mut row = vec![format_number(series[0].points[i].x)];
        for s in series {
            row.push(
                s.points
                    .get(i)
                    .map(|p| format_number(p.value))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        rows.push(row);
    }
    render_table(&header, &rows)
}

/// Formats a voltage sweep (one curve of Fig. 9) as a table of voltage, BER, task value,
/// recovery rate and total energy.
pub fn render_voltage_sweep(sweep: &VoltageSweep) -> String {
    let header = [
        "voltage [V]",
        "BER",
        "task value",
        "recovery rate",
        "energy [J]",
    ];
    let rows: Vec<Vec<String>> = sweep.outcomes.iter().map(render_outcome_row).collect();
    format!("{}\n{}", sweep.scheme, render_table(&header, &rows))
}

fn render_outcome_row(o: &PipelineOutcome) -> Vec<String> {
    vec![
        format!("{:.2}", o.voltage),
        format!("{:.2e}", o.ber),
        format_number(o.task_value),
        format!("{:.3}", o.recovery_rate()),
        format!("{:.4e}", o.energy.total_j()),
    ]
}

/// Formats the Table II rows (per-component optimal voltage and energy saving).
pub fn render_component_savings(rows: &[ComponentSweetSpot]) -> String {
    let header = ["component", "optimal voltage [V]", "energy saving [%]"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.component.label().to_string(),
                format!("{:.2}", r.optimal_voltage),
                format!("{:.2}", r.energy_saving_percent),
            ]
        })
        .collect();
    render_table(&header, &body)
}

/// Compact number formatting: scientific for very large/small magnitudes, fixed otherwise.
pub fn format_number(value: f64) -> String {
    let magnitude = value.abs();
    if value == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e5).contains(&magnitude) {
        format!("{value:.2e}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::SweepPoint;

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "123456".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("a-much-longer-name"));
        // Both data lines end aligned to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn render_series_table_has_one_column_per_series() {
        let series = vec![
            Series {
                label: "K".into(),
                points: vec![SweepPoint {
                    x: 1e-4,
                    value: 15.0,
                    std: 0.1,
                }],
            },
            Series {
                label: "O".into(),
                points: vec![SweepPoint {
                    x: 1e-4,
                    value: 90.0,
                    std: 3.0,
                }],
            },
        ];
        let table = render_series_table("BER", &series);
        assert!(table.contains("BER"));
        assert!(table.contains('K'));
        assert!(table.contains('O'));
        assert!(table.contains("15.000"));
        assert!(table.contains("90.000"));
        assert_eq!(render_series_table("x", &[]), "(empty)\n");
    }

    #[test]
    fn format_number_switches_notation() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(12.3456), "12.346");
        assert!(format_number(1.0e-6).contains('e'));
        assert!(format_number(3.2e7).contains('e'));
    }
}
