//! Behavioural model of the hardware statistical unit (Fig. 7(c)).
//!
//! The statistical unit sits next to the systolic array's checksum outputs. Per protected
//! GEMM it receives the observed checksum `eᵀY` and the expected checksum `eᵀWX` column by
//! column, and it consists of:
//!
//! * a **subtractor** producing the per-column deviation;
//! * an **accumulator** summing deviations into the MSD;
//! * a bank of **buffers** (one 32-bit register per output column) holding the deviations;
//! * a **Log2LinearFunction unit** evaluating `θ_mag = b − (a−1)·log₂(MSD)` in fixed point;
//! * a parallel **countif** comparator stage producing `freq_eff`.
//!
//! The model mirrors that structure: deviations stream in one per cycle, the decision is
//! available a fixed number of cycles after the last column, and the `log₂` is evaluated with
//! the same leading-one + linear-interpolation approximation a hardware unit would use. A
//! test verifies that the hardware-style decision matches the exact software detector for the
//! overwhelming majority of random error patterns (they differ only when a deviation lies
//! within the log-approximation error of the threshold).

use crate::critical_region::CriticalRegion;
use crate::detector::Detection;
use serde::{Deserialize, Serialize};

/// Cycle cost of the fixed pipeline stages after the last deviation has streamed in
/// (accumulator flush, Log2LinearFunction evaluation, countif reduction).
pub const DECISION_PIPELINE_CYCLES: u64 = 4;

/// Behavioural model of the statistical unit attached to one systolic-array output edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatisticalUnit {
    region: CriticalRegion,
    /// Number of buffer registers (one per output column of the array).
    buffer_depth: usize,
}

/// Outcome of streaming one GEMM's checksums through the statistical unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitDecision {
    /// The recovery decision and error statistics, as the hardware would report them.
    pub detection: Detection,
    /// Cycles spent processing this GEMM's checksum stream.
    pub cycles: u64,
    /// Whether the deviation stream overflowed the buffer bank (GEMMs wider than the array
    /// are processed in column tiles, so this should not happen in practice).
    pub buffer_overflow: bool,
}

impl StatisticalUnit {
    /// Creates a statistical unit with `buffer_depth` deviation buffers.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_depth` is zero.
    pub fn new(region: CriticalRegion, buffer_depth: usize) -> Self {
        assert!(
            buffer_depth > 0,
            "the statistical unit needs at least one buffer"
        );
        Self {
            region,
            buffer_depth,
        }
    }

    /// The unit used in the paper's platform: one buffer per column of the 256-wide array.
    pub fn paper_256(region: CriticalRegion) -> Self {
        Self::new(region, 256)
    }

    /// The critical region programmed into the unit.
    pub fn region(&self) -> &CriticalRegion {
        &self.region
    }

    /// Number of deviation buffers.
    pub fn buffer_depth(&self) -> usize {
        self.buffer_depth
    }

    /// Streams the observed and expected checksums through the unit and returns its decision.
    ///
    /// # Panics
    ///
    /// Panics if the two checksum slices have different lengths.
    pub fn process(&self, observed: &[i64], expected: &[i64]) -> UnitDecision {
        assert_eq!(
            observed.len(),
            expected.len(),
            "checksum streams must have equal length"
        );
        let n = observed.len();
        let buffer_overflow = n > self.buffer_depth;

        // Subtractor + accumulator stage: one deviation per cycle.
        let deviations: Vec<i64> = observed
            .iter()
            .zip(expected)
            .map(|(&o, &e)| o - e)
            .collect();
        let msd: i64 = deviations.iter().sum();
        let errors_detected = deviations.iter().any(|&d| d != 0);

        // Log2LinearFunction unit: θ_mag from the hardware log2 approximation.
        let theta_mag =
            self.region.b - (self.region.a - 1.0) * fixed_point_log2(msd.unsigned_abs());
        // Countif stage: compare every buffered |deviation| against 2^θ_mag. The hardware
        // compares in the log domain (leading-one position vs θ_mag), reproduced here.
        let effective_frequency = deviations
            .iter()
            .filter(|&&d| d != 0 && fixed_point_log2(d.unsigned_abs()) > theta_mag)
            .count();

        let trigger =
            errors_detected && msd != 0 && (effective_frequency as f64) > self.region.theta_freq();
        let detection = Detection {
            trigger_recovery: trigger,
            errors_detected,
            msd,
            effective_frequency,
            theta_mag_log2: Some(theta_mag),
        };
        UnitDecision {
            detection,
            cycles: n as u64 + DECISION_PIPELINE_CYCLES,
            buffer_overflow,
        }
    }
}

/// Hardware-style `log₂` of an unsigned value: leading-one position plus a linear fraction
/// from the next few mantissa bits (what a small Log2LinearFunction lookup unit computes).
///
/// Returns 0.0 for zero input (the hardware gates the computation off when MSD is zero).
pub fn fixed_point_log2(value: u64) -> f64 {
    if value == 0 {
        return 0.0;
    }
    let msb = 63 - value.leading_zeros() as u64;
    if msb == 0 {
        return 0.0;
    }
    // Take up to 6 fraction bits below the leading one and interpolate linearly: the classic
    // piecewise-linear log approximation with worst-case error ≈ 0.086 log2 units.
    let fraction_bits = msb.min(6);
    let fraction = (value >> (msb - fraction_bits)) & ((1 << fraction_bits) - 1);
    msb as f64 + fraction as f64 / (1u64 << fraction_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statistical::StatisticalAbft;

    #[test]
    fn fixed_point_log2_tracks_exact_log2() {
        for v in [
            1u64,
            2,
            3,
            7,
            100,
            1 << 20,
            (1 << 30) + 12345,
            u32::MAX as u64,
        ] {
            let exact = (v as f64).log2();
            let approx = fixed_point_log2(v);
            assert!(
                (exact - approx).abs() < 0.1,
                "value {v}: exact {exact} vs approx {approx}"
            );
        }
        assert_eq!(fixed_point_log2(0), 0.0);
        assert_eq!(fixed_point_log2(1), 0.0);
    }

    #[test]
    fn clean_stream_produces_clean_decision() {
        let unit = StatisticalUnit::paper_256(CriticalRegion::resilient_default());
        let checksums = vec![100i64, -50, 0, 7];
        let decision = unit.process(&checksums, &checksums);
        assert!(!decision.detection.trigger_recovery);
        assert!(!decision.detection.errors_detected);
        assert_eq!(decision.detection.msd, 0);
        assert_eq!(decision.cycles, 4 + DECISION_PIPELINE_CYCLES);
        assert!(!decision.buffer_overflow);
    }

    #[test]
    fn unit_decision_matches_software_detector_on_random_patterns() {
        use rand::Rng;
        let mut rng = realm_tensor::rng::seeded(31);
        let region = CriticalRegion::resilient_default();
        let unit = StatisticalUnit::paper_256(region);
        let software = StatisticalAbft::new(region);
        let mut agreements = 0;
        let trials = 300;
        for _ in 0..trials {
            let n = 64;
            let expected: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
            let mut observed = expected.clone();
            // Random error pattern: 0..20 errors with magnitudes across the whole range.
            for _ in 0..rng.gen_range(0..20) {
                let j = rng.gen_range(0..n);
                let magnitude = 1i64 << rng.gen_range(4..30);
                observed[j] += if rng.gen::<bool>() {
                    magnitude
                } else {
                    -magnitude
                };
            }
            let deviations: Vec<i64> = observed.iter().zip(&expected).map(|(o, e)| o - e).collect();
            let hw = unit
                .process(&observed, &expected)
                .detection
                .trigger_recovery;
            let sw = software.evaluate_deviations(&deviations).trigger_recovery;
            if hw == sw {
                agreements += 1;
            }
        }
        assert!(
            agreements as f64 / trials as f64 > 0.97,
            "hardware and software decisions agree on {agreements}/{trials} patterns"
        );
    }

    #[test]
    fn buffer_overflow_is_reported() {
        let unit = StatisticalUnit::new(CriticalRegion::resilient_default(), 8);
        let stream = vec![0i64; 16];
        assert!(unit.process(&stream, &stream).buffer_overflow);
        assert_eq!(unit.buffer_depth(), 8);
    }

    #[test]
    fn cycles_scale_with_stream_length() {
        let unit = StatisticalUnit::paper_256(CriticalRegion::resilient_default());
        let short = unit.process(&[0; 16], &[0; 16]).cycles;
        let long = unit.process(&vec![0; 256], &vec![0; 256]).cycles;
        assert_eq!(long - short, 240);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_streams_are_rejected() {
        let unit = StatisticalUnit::paper_256(CriticalRegion::resilient_default());
        let _ = unit.process(&[1, 2, 3], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_buffers_are_rejected() {
        let _ = StatisticalUnit::new(CriticalRegion::resilient_default(), 0);
    }
}
