//! The common detector interface shared by classical, Approx and statistical ABFT.

use realm_tensor::{MatI32, MatI8};
use serde::{Deserialize, Serialize};

/// Verdict of one ABFT inspection of a GEMM result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Whether the detector requests a recovery (recomputation / replay) of this GEMM.
    pub trigger_recovery: bool,
    /// Whether any non-zero deviation was observed at all (errors may exist without a
    /// recovery being warranted — the whole point of the statistical scheme).
    pub errors_detected: bool,
    /// Matrix-sum deviation of the inspected accumulator.
    pub msd: i64,
    /// Number of output columns whose deviation magnitude exceeded the detector's magnitude
    /// threshold (`freq_eff` in the paper); equals the number of non-zero deviations for the
    /// classical detector.
    pub effective_frequency: usize,
    /// Magnitude threshold `θmag` applied (log₂ domain), when the detector uses one.
    pub theta_mag_log2: Option<f64>,
}

impl Detection {
    /// A verdict for a fault-free GEMM: nothing detected, nothing to recover.
    pub fn clean() -> Self {
        Self {
            trigger_recovery: false,
            errors_detected: false,
            msd: 0,
            effective_frequency: 0,
            theta_mag_log2: None,
        }
    }
}

impl Default for Detection {
    fn default() -> Self {
        Self::clean()
    }
}

/// An ABFT error detector operating on one GEMM invocation.
///
/// Implementations receive the INT8 operands (assumed fault-free — operands are read from
/// ECC-protected memory in the paper's fault model) and the INT32 accumulator as produced by
/// the (possibly faulty) datapath.
pub trait AbftDetector: Send + Sync {
    /// Inspects one GEMM result and decides whether recovery is needed.
    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection;

    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;
}

impl<D: AbftDetector + ?Sized> AbftDetector for &D {
    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        (**self).inspect(w, x, acc)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<D: AbftDetector + ?Sized> AbftDetector for Box<D> {
    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        (**self).inspect(w, x, acc)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_detection_is_default() {
        let d = Detection::default();
        assert!(!d.trigger_recovery);
        assert!(!d.errors_detected);
        assert_eq!(d.msd, 0);
        assert_eq!(d.effective_frequency, 0);
        assert!(d.theta_mag_log2.is_none());
        assert_eq!(d, Detection::clean());
    }

    #[test]
    fn trait_objects_forward_calls() {
        struct AlwaysTrigger;
        impl AbftDetector for AlwaysTrigger {
            fn inspect(&self, _: &MatI8, _: &MatI8, _: &MatI32) -> Detection {
                Detection {
                    trigger_recovery: true,
                    errors_detected: true,
                    ..Detection::clean()
                }
            }
            fn name(&self) -> &'static str {
                "always"
            }
        }
        let boxed: Box<dyn AbftDetector> = Box::new(AlwaysTrigger);
        let verdict = boxed.inspect(&MatI8::zeros(1, 1), &MatI8::zeros(1, 1), &MatI32::zeros(1, 1));
        assert!(verdict.trigger_recovery);
        assert_eq!(boxed.name(), "always");
        let by_ref = &AlwaysTrigger;
        assert!(by_ref
            .inspect(&MatI8::zeros(1, 1), &MatI8::zeros(1, 1), &MatI32::zeros(1, 1))
            .trigger_recovery);
    }
}
