//! The common detector interface shared by classical, Approx and statistical ABFT.
//!
//! Every policy decides from the same signature — the per-column checksum deviations of one
//! GEMM — so the trait is built around [`AbftDetector::evaluate`] on a deviation vector.
//! Two entry points feed it:
//!
//! * [`AbftDetector::inspect`] recomputes the deviations from the raw operands and the
//!   accumulator (the original two-pass path, kept as the oracle);
//! * [`AbftDetector::inspect_checksummed`] consumes a [`ChecksummedGemm`] produced by a
//!   fused-checksum [`realm_tensor::GemmEngine`] pass, skipping the operand re-read entirely
//!   — this is the path the protected pipelines run.

use crate::checksum;
use realm_tensor::{ChecksummedGemm, MatI32, MatI8};
use serde::{Deserialize, Serialize};

/// Verdict of one ABFT inspection of a GEMM result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Whether the detector requests a recovery (recomputation / replay) of this GEMM.
    pub trigger_recovery: bool,
    /// Whether any non-zero deviation was observed at all (errors may exist without a
    /// recovery being warranted — the whole point of the statistical scheme).
    pub errors_detected: bool,
    /// Matrix-sum deviation of the inspected accumulator.
    pub msd: i64,
    /// Number of output columns whose deviation magnitude exceeded the detector's magnitude
    /// threshold (`freq_eff` in the paper); equals the number of non-zero deviations for the
    /// classical detector.
    pub effective_frequency: usize,
    /// Magnitude threshold `θmag` applied (log₂ domain), when the detector uses one.
    pub theta_mag_log2: Option<f64>,
}

impl Detection {
    /// A verdict for a fault-free GEMM: nothing detected, nothing to recover.
    pub fn clean() -> Self {
        Self {
            trigger_recovery: false,
            errors_detected: false,
            msd: 0,
            effective_frequency: 0,
            theta_mag_log2: None,
        }
    }
}

impl Default for Detection {
    fn default() -> Self {
        Self::clean()
    }
}

/// An ABFT error detector operating on one GEMM invocation.
///
/// Implementations receive the INT8 operands (assumed fault-free — operands are read from
/// ECC-protected memory in the paper's fault model) and the INT32 accumulator as produced by
/// the (possibly faulty) datapath, or — on the fused path — the accumulator already bundled
/// with its checksums.
pub trait AbftDetector: Send + Sync {
    /// Decides from a precomputed per-column deviation vector.
    ///
    /// This is the policy core: both inspection entry points funnel into it, and the
    /// hardware statistical unit model operates on exactly this signature.
    fn evaluate(&self, deviations: &[i64]) -> Detection;

    /// Inspects one GEMM result, recomputing the checksums from the operands (two-pass).
    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        self.evaluate(&checksum::column_deviations(w, x, acc))
    }

    /// Inspects a fused-checksum GEMM result without touching the operands.
    ///
    /// The deviations reflect the accumulator's *current* contents: a mutation through
    /// [`ChecksummedGemm::acc_mut`] (error injection) transparently refreshes the observed
    /// side, while the operand-side checksum from the fused pass is reused as-is.
    fn inspect_checksummed(&self, result: &ChecksummedGemm) -> Detection {
        self.evaluate(&result.column_deviations())
    }

    /// [`AbftDetector::inspect_checksummed`] with a caller-provided deviation buffer.
    ///
    /// The deviations are materialised into `scratch`
    /// ([`ChecksummedGemm::column_deviations_into`]) instead of a fresh `Vec`, so a
    /// protector that owns the buffer inspects every GEMM of the decode hot loop without
    /// touching the allocator. The verdict is identical to
    /// [`AbftDetector::inspect_checksummed`]: both funnel the same deviation vector into
    /// [`AbftDetector::evaluate`].
    fn inspect_checksummed_into(
        &self,
        result: &ChecksummedGemm,
        scratch: &mut Vec<i64>,
    ) -> Detection {
        result.column_deviations_into(scratch);
        self.evaluate(scratch)
    }

    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;
}

impl<D: AbftDetector + ?Sized> AbftDetector for &D {
    fn evaluate(&self, deviations: &[i64]) -> Detection {
        (**self).evaluate(deviations)
    }

    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        (**self).inspect(w, x, acc)
    }

    fn inspect_checksummed(&self, result: &ChecksummedGemm) -> Detection {
        (**self).inspect_checksummed(result)
    }

    fn inspect_checksummed_into(
        &self,
        result: &ChecksummedGemm,
        scratch: &mut Vec<i64>,
    ) -> Detection {
        (**self).inspect_checksummed_into(result, scratch)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<D: AbftDetector + ?Sized> AbftDetector for Box<D> {
    fn evaluate(&self, deviations: &[i64]) -> Detection {
        (**self).evaluate(deviations)
    }

    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        (**self).inspect(w, x, acc)
    }

    fn inspect_checksummed(&self, result: &ChecksummedGemm) -> Detection {
        (**self).inspect_checksummed(result)
    }

    fn inspect_checksummed_into(
        &self,
        result: &ChecksummedGemm,
        scratch: &mut Vec<i64>,
    ) -> Detection {
        (**self).inspect_checksummed_into(result, scratch)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::{GemmEngine, ReferenceEngine};

    #[test]
    fn clean_detection_is_default() {
        let d = Detection::default();
        assert!(!d.trigger_recovery);
        assert!(!d.errors_detected);
        assert_eq!(d.msd, 0);
        assert_eq!(d.effective_frequency, 0);
        assert!(d.theta_mag_log2.is_none());
        assert_eq!(d, Detection::clean());
    }

    struct AlwaysTrigger;

    impl AbftDetector for AlwaysTrigger {
        fn evaluate(&self, _: &[i64]) -> Detection {
            Detection {
                trigger_recovery: true,
                errors_detected: true,
                ..Detection::clean()
            }
        }

        fn name(&self) -> &'static str {
            "always"
        }
    }

    #[test]
    fn trait_objects_forward_calls() {
        let boxed: Box<dyn AbftDetector> = Box::new(AlwaysTrigger);
        let verdict = boxed.inspect(
            &MatI8::zeros(1, 1),
            &MatI8::zeros(1, 1),
            &MatI32::zeros(1, 1),
        );
        assert!(verdict.trigger_recovery);
        assert_eq!(boxed.name(), "always");
        let by_ref = &AlwaysTrigger;
        assert!(
            by_ref
                .inspect(
                    &MatI8::zeros(1, 1),
                    &MatI8::zeros(1, 1),
                    &MatI32::zeros(1, 1)
                )
                .trigger_recovery
        );
        assert!(by_ref.evaluate(&[0]).trigger_recovery);
    }

    #[test]
    fn default_inspect_paths_agree() {
        struct CountNonzero;
        impl AbftDetector for CountNonzero {
            fn evaluate(&self, deviations: &[i64]) -> Detection {
                let nonzero = deviations.iter().filter(|&&d| d != 0).count();
                Detection {
                    trigger_recovery: nonzero > 0,
                    errors_detected: nonzero > 0,
                    msd: deviations.iter().sum(),
                    effective_frequency: nonzero,
                    theta_mag_log2: None,
                }
            }
            fn name(&self) -> &'static str {
                "count"
            }
        }
        let w = MatI8::from_fn(5, 4, |r, c| (r as i8) - (c as i8));
        let x = MatI8::from_fn(4, 6, |r, c| (2 * r as i8) - (c as i8));
        let mut result = ReferenceEngine
            .gemm_i8_checksummed_two_pass(&w, &x)
            .unwrap();
        result.acc_mut()[(1, 2)] = result.acc()[(1, 2)].wrapping_add(999);
        let detector = CountNonzero;
        let via_inspect = detector.inspect(&w, &x, result.acc());
        let via_checksummed = detector.inspect_checksummed(&result);
        assert_eq!(via_inspect, via_checksummed);
        assert_eq!(via_inspect.msd, 999);
    }
}
