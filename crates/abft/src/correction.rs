//! Single-error localisation and in-place correction from two-sided checksums.
//!
//! Classical ABFT can do more than detect: with both column checksums (`eᵀW·X` vs `eᵀY`) and
//! row checksums (`W·Xe` vs `Y·e`), a *single* corrupted accumulator element can be located at
//! the intersection of the deviating row and column and corrected by subtracting the
//! deviation — no recomputation needed. The paper's recovery model is recomputation (it must
//! handle arbitrary error patterns), but single-error correction is the classic extension and
//! is provided here as an optional, cheaper first-line recovery: when it applies, the
//! recomputation (and its energy) is avoided entirely.

use crate::checksum;
use realm_tensor::{MatI32, MatI8};
use serde::{Deserialize, Serialize};

/// Outcome of attempting checksum-based correction on a GEMM result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectionOutcome {
    /// No deviation was observed; the accumulator was already correct.
    AlreadyCorrect,
    /// Exactly one row and one column deviated consistently; the element at their
    /// intersection was corrected in place.
    Corrected {
        /// Row of the corrected element.
        row: usize,
        /// Column of the corrected element.
        col: usize,
        /// The deviation that was removed (new value = old value − deviation).
        deviation: i64,
    },
    /// The deviation pattern is not a single-element error (multiple rows/columns deviate or
    /// the row and column deviations disagree); the caller must fall back to recomputation.
    NeedsRecomputation,
}

impl CorrectionOutcome {
    /// Whether the accumulator is now known to be correct (either it already was, or the
    /// single error was repaired).
    pub fn is_correct(&self) -> bool {
        !matches!(self, CorrectionOutcome::NeedsRecomputation)
    }
}

/// Attempts to locate and correct a single corrupted element of `acc = w · x` in place.
///
/// Returns [`CorrectionOutcome::NeedsRecomputation`] whenever the deviation pattern cannot be
/// explained by exactly one corrupted element; in that case `acc` is left untouched.
///
/// # Panics
///
/// Panics if the operand shapes are inconsistent with `acc` (the GEMM would already have
/// rejected them).
pub fn correct_single_error(w: &MatI8, x: &MatI8, acc: &mut MatI32) -> CorrectionOutcome {
    let col_dev = checksum::column_deviations(w, x, acc);
    let row_dev = checksum::row_deviations(w, x, acc);

    let deviating_cols: Vec<usize> = col_dev
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != 0)
        .map(|(j, _)| j)
        .collect();
    let deviating_rows: Vec<usize> = row_dev
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != 0)
        .map(|(i, _)| i)
        .collect();

    match (deviating_rows.as_slice(), deviating_cols.as_slice()) {
        ([], []) => CorrectionOutcome::AlreadyCorrect,
        ([row], [col]) if row_dev[*row] == col_dev[*col] => {
            let deviation = col_dev[*col];
            let corrected = acc[(*row, *col)] as i64 - deviation;
            // An additive error on an i32 accumulator always leaves the corrected value
            // representable; clamp defensively anyway so the repair can never widen damage.
            acc[(*row, *col)] = corrected.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            CorrectionOutcome::Corrected {
                row: *row,
                col: *col,
                deviation,
            }
        }
        _ => CorrectionOutcome::NeedsRecomputation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::gemm;

    fn operands(seed: u64, n: usize) -> (MatI8, MatI8, MatI32) {
        use rand::Rng;
        let mut r = realm_tensor::rng::seeded(seed);
        let w = MatI8::from_fn(n, n, |_, _| r.gen_range(-50..=50));
        let x = MatI8::from_fn(n, n, |_, _| r.gen_range(-50..=50));
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        (w, x, acc)
    }

    #[test]
    fn clean_accumulator_is_reported_correct() {
        let (w, x, mut acc) = operands(1, 8);
        assert_eq!(
            correct_single_error(&w, &x, &mut acc),
            CorrectionOutcome::AlreadyCorrect
        );
    }

    #[test]
    fn single_bit_flip_is_located_and_repaired() {
        let (w, x, clean) = operands(2, 10);
        for &(r, c, bit) in &[(0usize, 0usize, 30u32), (3, 7, 22), (9, 9, 5)] {
            let mut acc = clean.clone();
            acc[(r, c)] ^= 1 << bit;
            let outcome = correct_single_error(&w, &x, &mut acc);
            match outcome {
                CorrectionOutcome::Corrected { row, col, .. } => {
                    assert_eq!((row, col), (r, c));
                }
                other => panic!("expected correction at ({r},{c}), got {other:?}"),
            }
            assert_eq!(acc, clean, "repair must restore the exact result");
            assert!(outcome.is_correct());
        }
    }

    #[test]
    fn multi_error_patterns_request_recomputation() {
        let (w, x, clean) = operands(3, 8);
        let mut acc = clean.clone();
        acc[(1, 2)] = acc[(1, 2)].wrapping_add(1 << 20);
        acc[(5, 6)] = acc[(5, 6)].wrapping_add(1 << 18);
        let before = acc.clone();
        assert_eq!(
            correct_single_error(&w, &x, &mut acc),
            CorrectionOutcome::NeedsRecomputation
        );
        assert_eq!(acc, before, "the accumulator must not be modified");
    }

    #[test]
    fn two_errors_in_same_row_are_not_misrepaired() {
        let (w, x, clean) = operands(4, 8);
        let mut acc = clean.clone();
        acc[(2, 1)] = acc[(2, 1)].wrapping_add(500);
        acc[(2, 6)] = acc[(2, 6)].wrapping_add(700);
        // Row 2 deviates by 1200; columns 1 and 6 deviate individually → ambiguous.
        assert_eq!(
            correct_single_error(&w, &x, &mut acc),
            CorrectionOutcome::NeedsRecomputation
        );
    }

    #[test]
    fn negative_deviations_are_repaired_too() {
        let (w, x, clean) = operands(5, 6);
        let mut acc = clean.clone();
        acc[(4, 3)] = acc[(4, 3)].wrapping_sub(1 << 15);
        let outcome = correct_single_error(&w, &x, &mut acc);
        assert!(matches!(outcome, CorrectionOutcome::Corrected { deviation, .. } if deviation < 0));
        assert_eq!(acc, clean);
    }
}
