//! Classical ABFT: recover on *any* detected checksum mismatch.
//!
//! This is the baseline the paper improves upon (Tab. I, Fig. 9). Detection capability is
//! excellent — any additive datapath error that changes a column checksum is caught — but
//! every detection triggers a full recovery, which is exactly the recovery-cost problem
//! ReaLM addresses: at aggressive voltages nearly every GEMM contains at least one (harmless)
//! flipped low bit, so classical ABFT ends up recomputing almost everything.

use crate::checksum;
use crate::detector::{AbftDetector, Detection};
use realm_tensor::{MatI32, MatI8};
use serde::{Deserialize, Serialize};

/// Classical one-sided column-checksum ABFT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassicalAbft {
    /// Also verify row-side checksums (two-sided ABFT); improves localisation at the cost of
    /// a second checksum path. Detection behaviour for additive errors is identical because
    /// every additive error already perturbs a column checksum.
    pub two_sided: bool,
}

impl ClassicalAbft {
    /// One-sided classical ABFT (the variant integrated into the SA in Fig. 3(b)).
    pub fn new() -> Self {
        Self { two_sided: false }
    }

    /// Two-sided classical ABFT (column and row checksums).
    ///
    /// Row-side verification needs the raw operands, so it only runs through the two-pass
    /// [`AbftDetector::inspect`] entry point. On the fused path
    /// ([`AbftDetector::inspect_checksummed`]) this detector degrades to one-sided column
    /// coverage — the same coverage the paper's systolic array provides, whose checksum
    /// hardware is the column row of Fig. 3(b).
    pub fn two_sided() -> Self {
        Self { two_sided: true }
    }
}

impl AbftDetector for ClassicalAbft {
    fn evaluate(&self, deviations: &[i64]) -> Detection {
        let nonzero = deviations.iter().filter(|&&d| d != 0).count();
        Detection {
            trigger_recovery: nonzero > 0,
            errors_detected: nonzero > 0,
            msd: checksum::msd(deviations),
            effective_frequency: nonzero,
            theta_mag_log2: None,
        }
    }

    fn inspect(&self, w: &MatI8, x: &MatI8, acc: &MatI32) -> Detection {
        let mut verdict = self.evaluate(&checksum::column_deviations(w, x, acc));
        if self.two_sided {
            // The row-side checksums need the operands, so only this two-pass entry point
            // can apply them; the fused path (`inspect_checksummed`) is column-side only,
            // which matches the one-sided checksum column integrated into the systolic array.
            let row_nonzero = checksum::row_deviations(w, x, acc)
                .iter()
                .filter(|&&d| d != 0)
                .count();
            if row_nonzero > 0 {
                verdict.trigger_recovery = true;
                verdict.errors_detected = true;
            }
        }
        verdict
    }

    fn inspect_checksummed(&self, result: &realm_tensor::ChecksummedGemm) -> Detection {
        // Explicitly column-side only: a fused result carries no operands, so the two_sided
        // row checksums cannot be evaluated here (see `ClassicalAbft::two_sided`). Canceling
        // same-column errors that only the row side would catch pass this entry point.
        self.evaluate(&result.column_deviations())
    }

    fn name(&self) -> &'static str {
        "classical-abft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::gemm;

    fn operands() -> (MatI8, MatI8, MatI32) {
        let w = MatI8::from_fn(6, 6, |r, c| ((r * 3 + c) % 9) as i8 - 4);
        let x = MatI8::from_fn(6, 6, |r, c| ((r + 2 * c) % 7) as i8 - 3);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        (w, x, acc)
    }

    #[test]
    fn clean_gemm_is_not_flagged() {
        let (w, x, acc) = operands();
        let verdict = ClassicalAbft::new().inspect(&w, &x, &acc);
        assert!(!verdict.trigger_recovery);
        assert!(!verdict.errors_detected);
        assert_eq!(verdict.msd, 0);
    }

    #[test]
    fn any_single_bit_flip_triggers_recovery() {
        let (w, x, acc) = operands();
        for bit in [0u32, 5, 14, 27, 30] {
            let mut corrupted = acc.clone();
            corrupted[(2, 4)] ^= 1 << bit;
            let verdict = ClassicalAbft::new().inspect(&w, &x, &corrupted);
            assert!(
                verdict.trigger_recovery,
                "bit {bit} flip must trigger classical recovery"
            );
            assert_eq!(verdict.effective_frequency, 1);
        }
    }

    #[test]
    fn tiny_errors_still_trigger_recovery() {
        // The defining weakness of classical ABFT: a ±1 deviation that cannot possibly affect
        // model quality still costs a full recomputation.
        let (w, x, mut acc) = operands();
        acc[(0, 0)] = acc[(0, 0)].wrapping_add(1);
        assert!(ClassicalAbft::new().inspect(&w, &x, &acc).trigger_recovery);
    }

    #[test]
    fn two_sided_variant_detects_the_same_errors() {
        let (w, x, mut acc) = operands();
        acc[(3, 3)] = acc[(3, 3)].wrapping_add(1 << 10);
        assert!(
            ClassicalAbft::two_sided()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
        let (_, _, clean) = operands();
        assert!(
            !ClassicalAbft::two_sided()
                .inspect(&w, &x, &clean)
                .trigger_recovery
        );
    }

    #[test]
    fn cancelling_errors_in_one_column_can_hide_from_one_sided_checksums() {
        // Two errors of opposite sign in the same column cancel in the column checksum; the
        // two-sided variant still sees them in the row checksums. This documents the known
        // coverage limits of checksum ABFT rather than a bug.
        let (w, x, mut acc) = operands();
        acc[(0, 2)] = acc[(0, 2)].wrapping_add(1 << 12);
        acc[(4, 2)] = acc[(4, 2)].wrapping_sub(1 << 12);
        let one_sided = ClassicalAbft::new().inspect(&w, &x, &acc);
        assert!(!one_sided.trigger_recovery);
        let two_sided = ClassicalAbft::two_sided().inspect(&w, &x, &acc);
        assert!(two_sided.trigger_recovery);
    }
}
