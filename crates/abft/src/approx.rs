//! ApproxABFT: tolerate small errors by thresholding the matrix-sum deviation.
//!
//! ApproxABFT (Xue et al.) observes that tiny computational errors do not hurt model quality
//! and therefore triggers recovery only when `|MSD|` exceeds a threshold. The paper's
//! criticism — which motivates statistical ABFT — is that MSD alone cannot distinguish one
//! huge error from many small ones, and it ignores error *frequency* entirely, so it still
//! recovers unnecessarily in some regimes and misses damaging patterns in others.

use crate::checksum;
use crate::detector::{AbftDetector, Detection};
use serde::{Deserialize, Serialize};

/// MSD-threshold ABFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApproxAbft {
    /// Recovery is triggered when `|MSD|` is strictly greater than this threshold.
    pub msd_threshold: i64,
}

impl ApproxAbft {
    /// Creates an ApproxABFT detector with the given MSD threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is negative.
    pub fn new(msd_threshold: i64) -> Self {
        assert!(msd_threshold >= 0, "MSD threshold must be non-negative");
        Self { msd_threshold }
    }

    /// The threshold the paper's comparison uses for quantized LLM GEMMs: tolerate deviations
    /// up to 2²⁰ accumulator LSBs, roughly the magnitude below which the characterization
    /// shows no measurable perplexity impact for any component.
    pub fn paper_default() -> Self {
        Self::new(1 << 20)
    }
}

impl Default for ApproxAbft {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl AbftDetector for ApproxAbft {
    fn evaluate(&self, deviations: &[i64]) -> Detection {
        let msd = checksum::msd(deviations);
        let nonzero = deviations.iter().filter(|&&d| d != 0).count();
        Detection {
            trigger_recovery: msd.unsigned_abs() > self.msd_threshold as u64,
            errors_detected: nonzero > 0,
            msd,
            effective_frequency: nonzero,
            theta_mag_log2: Some((self.msd_threshold.max(1) as f64).log2()),
        }
    }

    fn name(&self) -> &'static str {
        "approx-abft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::gemm;
    use realm_tensor::{MatI32, MatI8};

    fn operands() -> (MatI8, MatI8, MatI32) {
        let w = MatI8::from_fn(8, 8, |r, c| ((r + c) % 11) as i8 - 5);
        let x = MatI8::from_fn(8, 8, |r, c| ((3 * r + c) % 13) as i8 - 6);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        (w, x, acc)
    }

    #[test]
    fn clean_gemm_is_not_flagged() {
        let (w, x, acc) = operands();
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert!(!verdict.trigger_recovery);
        assert!(!verdict.errors_detected);
    }

    #[test]
    fn small_errors_are_tolerated_but_reported() {
        let (w, x, mut acc) = operands();
        acc[(1, 1)] = acc[(1, 1)].wrapping_add(1 << 10);
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert!(verdict.errors_detected, "the deviation is visible");
        assert!(!verdict.trigger_recovery, "but below the MSD threshold");
        assert_eq!(verdict.msd, 1 << 10);
    }

    #[test]
    fn large_errors_trigger_recovery() {
        let (w, x, mut acc) = operands();
        acc[(2, 5)] = acc[(2, 5)].wrapping_add(1 << 26);
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery);
    }

    #[test]
    fn negative_msd_uses_absolute_value() {
        let (w, x, mut acc) = operands();
        acc[(2, 5)] = acc[(2, 5)].wrapping_sub(1 << 26);
        assert!(
            ApproxAbft::paper_default()
                .inspect(&w, &x, &acc)
                .trigger_recovery
        );
    }

    #[test]
    fn msd_blindspot_many_small_errors_pass_undetected() {
        // 32 errors of 2^15 each give MSD = 2^20, right at the threshold: ApproxABFT lets this
        // pattern through even though (per the paper's Q1.4) a moderate frequency of
        // medium-sized errors is exactly the damaging regime. This documented blind spot is
        // what the statistical detector fixes.
        let (w, x, mut acc) = operands();
        for i in 0..32usize {
            let (r, c) = (i / 8, i % 8);
            acc[(r, c)] = acc[(r, c)].wrapping_add(1 << 15);
        }
        let verdict = ApproxAbft::paper_default().inspect(&w, &x, &acc);
        assert!(verdict.errors_detected);
        assert!(!verdict.trigger_recovery);
        // The 32 injected errors fold into the 8 per-column deviations.
        assert_eq!(verdict.effective_frequency, 8);
    }

    #[test]
    fn threshold_zero_degenerates_to_classical_behaviour_for_nonzero_msd() {
        let (w, x, mut acc) = operands();
        acc[(0, 0)] = acc[(0, 0)].wrapping_add(3);
        let verdict = ApproxAbft::new(0).inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_is_rejected() {
        let _ = ApproxAbft::new(-5);
    }
}
