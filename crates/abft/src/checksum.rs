//! Checksum arithmetic for ABFT over INT8×INT8→INT32 GEMMs.
//!
//! For `Y = W·X` with `W ∈ ℤ^{m×k}` and `X ∈ ℤ^{k×n}`, the column-checksum identity is
//!
//! ```text
//! eᵀ·Y = (eᵀ·W)·X
//! ```
//!
//! where `e` is the all-ones vector. The left side is computed from the (possibly corrupted)
//! accumulator outputs; the right side is computed from the operands by the checksum row/
//! column added to the systolic array (Fig. 3 and Fig. 7 of the paper). Their difference per
//! output column is the *column deviation*; the sum of deviations is the matrix-sum deviation
//! (MSD) used by ApproxABFT and by the statistical unit.
//!
//! All checksum arithmetic is carried out in `i64`: operands are INT8 and accumulators INT32,
//! so exact sums fit comfortably and cannot themselves overflow.

use realm_tensor::{engine, MatI32, MatI8, PackedMatI8, RowPartition};

/// Column sums of the INT8 left operand: `eᵀ·W`, one entry per inner-dimension index.
///
/// Delegates to [`realm_tensor::engine::operand_col_sums`] — the same routine the fused
/// GEMM backends use, so the checksum definition lives in exactly one place.
pub fn operand_col_sums(w: &MatI8) -> Vec<i64> {
    engine::operand_col_sums(w)
}

/// Expected output column checksum `(eᵀ·W)·X`, one entry per output column.
///
/// # Panics
///
/// Panics if `w.cols() != x.rows()` (the GEMM would have been rejected upstream).
pub fn expected_col_checksum(w: &MatI8, x: &MatI8) -> Vec<i64> {
    assert_eq!(w.cols(), x.rows(), "checksum shapes disagree with the GEMM");
    let etw = engine::operand_col_sums(w);
    let mut expected = vec![0i64; x.cols()];
    engine::accumulate_expected(&etw, x, &mut expected);
    expected
}

/// Observed output column checksum `eᵀ·Y`, one entry per output column.
///
/// Delegates to [`realm_tensor::engine::observed_col_sums`], shared with the fused backends.
pub fn observed_col_checksum(acc: &MatI32) -> Vec<i64> {
    engine::observed_col_sums(acc)
}

/// Per-column deviations `eᵀ·Y − (eᵀ·W)·X` of a (possibly corrupted) accumulator.
///
/// A fault-free GEMM yields all zeros. Each injected additive error of magnitude `d` in
/// column `j` shifts deviation `j` by exactly `d`, so the deviation vector is the column-wise
/// error signature the statistical unit buffers.
///
/// # Panics
///
/// Panics if the shapes are inconsistent with `acc = w · x`.
pub fn column_deviations(w: &MatI8, x: &MatI8, acc: &MatI32) -> Vec<i64> {
    assert_eq!(acc.rows(), w.rows(), "accumulator rows disagree with W");
    assert_eq!(acc.cols(), x.cols(), "accumulator columns disagree with X");
    let expected = expected_col_checksum(w, x);
    let observed = observed_col_checksum(acc);
    observed
        .into_iter()
        .zip(expected)
        .map(|(o, e)| o - e)
        .collect()
}

/// Matrix-sum deviation: the sum of all column deviations (`eᵀ·Y·e − eᵀ·W·X·e`).
pub fn msd(deviations: &[i64]) -> i64 {
    deviations.iter().sum()
}

/// Per-row-group column deviations of a batch-stacked GEMM: one deviation vector per group
/// of `parts`, where group `g`'s vector is `eᵍᵀ·Y − (eᵍᵀ·W)·X` with `eᵍ` selecting only
/// that group's rows.
///
/// This is how a detection on one batched GEMM is attributed back to the originating
/// sequence: the batch-wide column checksum sums over every sequence's rows, so it can say
/// *that* something deviated but not *whose* rows deviated. Re-reducing the checksums over
/// each group's row range — one extra pass over `w`, `x` and `acc` in total, paid only when
/// a detection fires — recovers the per-sequence signature. Empty groups yield all-zero
/// vectors.
///
/// # Panics
///
/// Panics if the shapes are inconsistent with `acc = w · x` or `parts` does not cover
/// exactly the accumulator's rows.
pub fn group_column_deviations(
    w: &MatI8,
    x: &MatI8,
    acc: &MatI32,
    parts: &RowPartition,
) -> Vec<Vec<i64>> {
    let mut etw = Vec::new();
    let mut flat = Vec::new();
    group_column_deviations_into(w, x, acc, parts, &mut etw, &mut flat);
    let n = x.cols();
    (0..parts.num_groups())
        .map(|g| flat[g * n..(g + 1) * n].to_vec())
        .collect()
}

/// [`group_column_deviations`] into caller-provided flat buffers.
///
/// `etw_scratch` receives the per-group operand checksums (`groups × w.cols()`, row-major)
/// and `deviations` the per-group deviation vectors (`groups × x.cols()`, row-major); both
/// are cleared and resized in place, so a protector that owns the two buffers pays no
/// allocation on the detection path. Group `g`'s deviations are
/// `deviations[g * n..(g + 1) * n]`.
///
/// # Panics
///
/// Panics under the same conditions as [`group_column_deviations`].
pub fn group_column_deviations_into(
    w: &MatI8,
    x: &MatI8,
    acc: &MatI32,
    parts: &RowPartition,
    etw_scratch: &mut Vec<i64>,
    deviations: &mut Vec<i64>,
) {
    assert_eq!(w.cols(), x.rows(), "checksum shapes disagree with the GEMM");
    assert_eq!(acc.rows(), w.rows(), "accumulator rows disagree with W");
    assert_eq!(acc.cols(), x.cols(), "accumulator columns disagree with X");
    assert_eq!(
        parts.total_rows(),
        acc.rows(),
        "row partition disagrees with the accumulator"
    );
    let groups = parts.num_groups();
    let k = w.cols();
    let n = x.cols();
    etw_scratch.clear();
    deviations.clear();
    if groups == 0 || n == 0 {
        // Degenerate shapes carry no checksum information (and `chunks_exact` rejects a
        // zero chunk size); leave both buffers empty.
        return;
    }
    deviations.resize(groups * n, 0);
    if k > 0 {
        // Per-group operand checksums eᵍᵀ·W: one pass over w.
        etw_scratch.resize(groups * k, 0);
        for g in 0..groups {
            let etw_g = &mut etw_scratch[g * k..(g + 1) * k];
            for r in parts.range(g) {
                for (s, &v) in etw_g.iter_mut().zip(w.row(r)) {
                    *s += v as i64;
                }
            }
        }
        // Per-group expected checksums (eᵍᵀ·W)·X: one fused pass over x for all groups.
        for (p, x_row) in (0..x.rows()).map(|p| (p, x.row(p))) {
            for (etw_g, dev_g) in etw_scratch
                .chunks_exact(k)
                .zip(deviations.chunks_exact_mut(n))
            {
                let weight = etw_g[p];
                if weight == 0 {
                    continue;
                }
                for (d, &v) in dev_g.iter_mut().zip(x_row) {
                    *d -= weight * v as i64;
                }
            }
        }
    }
    // Per-group observed checksums eᵍᵀ·Y: one pass over acc, folded straight into the
    // deviations (observed − expected).
    for (g, dev_g) in deviations.chunks_exact_mut(n).enumerate() {
        for r in parts.range(g) {
            for (d, &v) in dev_g.iter_mut().zip(acc.row(r)) {
                *d += v as i64;
            }
        }
    }
}

/// Indices of the groups of `parts` whose rows carry a non-zero checksum deviation.
///
/// The attribution core of batched protection: given a flagged batch-stacked GEMM, returns
/// the batch sequence indices the deviation traces back to. Like any column-checksum scheme
/// it cannot see errors that cancel exactly within one group's column sums.
///
/// # Panics
///
/// Panics under the same conditions as [`group_column_deviations`].
pub fn deviating_groups(w: &MatI8, x: &MatI8, acc: &MatI32, parts: &RowPartition) -> Vec<usize> {
    let mut etw = Vec::new();
    let mut dev = Vec::new();
    let mut out = Vec::new();
    deviating_groups_into(w, x, acc, parts, &mut etw, &mut dev, &mut out);
    out
}

/// [`deviating_groups`] into caller-provided buffers (`etw_scratch` and `dev_scratch` as in
/// [`group_column_deviations_into`]; `out` receives the deviating group indices).
///
/// # Panics
///
/// Panics under the same conditions as [`group_column_deviations`].
#[allow(clippy::too_many_arguments)] // the three scratch buffers are the point of this entry
pub fn deviating_groups_into(
    w: &MatI8,
    x: &MatI8,
    acc: &MatI32,
    parts: &RowPartition,
    etw_scratch: &mut Vec<i64>,
    dev_scratch: &mut Vec<i64>,
    out: &mut Vec<usize>,
) {
    group_column_deviations_into(w, x, acc, parts, etw_scratch, dev_scratch);
    out.clear();
    let n = x.cols();
    if n == 0 {
        return;
    }
    for (g, dev_g) in dev_scratch.chunks_exact(n).enumerate() {
        if dev_g.iter().any(|&d| d != 0) {
            out.push(g);
        }
    }
}

/// Per-shard deviation sums of a tensor-parallel column-sharded GEMM: entry `s` is the
/// sum of the column deviations over shard `s`'s column stripe (its shard-local MSD).
///
/// Under column sharding ([`realm_tensor::tp::ShardedLinear`]) every output column is
/// owned by exactly one shard, so attributing a detection to a shard is a *slice* of the
/// deviation vector at the shard boundaries — no re-reduction pass at all, unlike the
/// row-group attribution of batched GEMMs ([`group_column_deviations`]). The boundaries
/// come from [`realm_tensor::tp::shard_cols`], the same partition the TP dispatch uses,
/// so attribution and execution can never disagree about stripe ownership.
///
/// # Panics
///
/// Panics if `degree` is zero.
pub fn shard_deviation_sums(deviations: &[i64], degree: usize) -> Vec<i64> {
    let mut out = Vec::new();
    shard_deviation_sums_into(deviations, degree, &mut out);
    out
}

/// [`shard_deviation_sums`] into a caller-provided buffer (cleared and resized in
/// place), for detectors that attribute on every flagged GEMM without allocating.
///
/// # Panics
///
/// Panics if `degree` is zero.
pub fn shard_deviation_sums_into(deviations: &[i64], degree: usize, out: &mut Vec<i64>) {
    out.clear();
    out.reserve(degree);
    for range in realm_tensor::tp::shard_cols(deviations.len(), degree) {
        out.push(deviations[range].iter().sum());
    }
}

/// Indices of the shards of a column-sharded GEMM whose stripes carry a non-zero column
/// deviation — the fault domains a detection traces back to.
///
/// Checks every column, not just the shard sums, so two errors that cancel in a shard's
/// MSD but sit in different columns still implicate the shard.
///
/// # Panics
///
/// Panics if `degree` is zero.
pub fn deviating_shards(deviations: &[i64], degree: usize) -> Vec<usize> {
    let mut out = Vec::new();
    deviating_shards_into(deviations, degree, &mut out);
    out
}

/// [`deviating_shards`] into a caller-provided buffer (cleared in place).
///
/// # Panics
///
/// Panics if `degree` is zero.
pub fn deviating_shards_into(deviations: &[i64], degree: usize, out: &mut Vec<usize>) {
    out.clear();
    for (s, range) in realm_tensor::tp::shard_cols(deviations.len(), degree)
        .into_iter()
        .enumerate()
    {
        if deviations[range].iter().any(|&d| d != 0) {
            out.push(s);
        }
    }
}

/// Per-column deviations of a packed weight replica against its pack-time checksums.
///
/// [`PackedMatI8`] snapshots `eᵀ·W` when the weight matrix is packed at model load. Re-reducing
/// the interleaved tile buffer and subtracting those stored sums audits the *resident* packed
/// bytes — the copy the decode microkernels actually stream — so a bit flip that lands in the
/// packed replica after load shows up as a non-zero entry in the affected column. A clean
/// replica yields all zeros. Note this is a storage-integrity scrub, not a GEMM check: the
/// activation-dependent expected checksum `(eᵀ·X)·W` still comes from the fused GEMM paths.
pub fn packed_weight_deviations(pb: &PackedMatI8) -> Vec<i64> {
    let mut out = Vec::new();
    packed_weight_deviations_into(pb, &mut out);
    out
}

/// [`packed_weight_deviations`] into a caller-provided buffer (cleared and resized in place),
/// for scrub loops that run periodically without allocating.
pub fn packed_weight_deviations_into(pb: &PackedMatI8, out: &mut Vec<i64>) {
    pb.tile_col_sums_into(out);
    for (d, &reference) in out.iter_mut().zip(pb.col_sums()) {
        *d -= reference;
    }
}

/// Row-side checksums `W·(X·e)` vs `Y·e`, used by two-sided classical ABFT to localise the
/// corrupted row in addition to detecting it.
///
/// # Panics
///
/// Panics if the shapes are inconsistent with `acc = w · x`.
pub fn row_deviations(w: &MatI8, x: &MatI8, acc: &MatI32) -> Vec<i64> {
    assert_eq!(acc.rows(), w.rows(), "accumulator rows disagree with W");
    assert_eq!(acc.cols(), x.cols(), "accumulator columns disagree with X");
    // X·e: row sums of X.
    let xe: Vec<i64> = (0..x.rows())
        .map(|r| x.row(r).iter().map(|&v| v as i64).sum())
        .collect();
    (0..w.rows())
        .map(|i| {
            let expected: i64 = w
                .row(i)
                .iter()
                .zip(&xe)
                .map(|(&wv, &xv)| wv as i64 * xv)
                .sum();
            let observed: i64 = acc.row(i).iter().map(|&v| v as i64).sum();
            observed - expected
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::gemm;
    use realm_tensor::rng;

    fn random_operands(seed: u64, m: usize, k: usize, n: usize) -> (MatI8, MatI8, MatI32) {
        use rand::Rng;
        let mut r = rng::seeded(seed);
        let w = MatI8::from_fn(m, k, |_, _| r.gen_range(-40..=40));
        let x = MatI8::from_fn(k, n, |_, _| r.gen_range(-40..=40));
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        (w, x, acc)
    }

    #[test]
    fn fault_free_gemm_has_zero_deviations() {
        let (w, x, acc) = random_operands(1, 6, 9, 7);
        let dev = column_deviations(&w, &x, &acc);
        assert_eq!(dev.len(), 7);
        assert!(dev.iter().all(|&d| d == 0));
        assert_eq!(msd(&dev), 0);
        assert!(row_deviations(&w, &x, &acc).iter().all(|&d| d == 0));
    }

    #[test]
    fn single_additive_error_appears_in_exactly_one_column() {
        let (w, x, mut acc) = random_operands(2, 5, 8, 6);
        acc[(2, 3)] = acc[(2, 3)].wrapping_add(1 << 18);
        let dev = column_deviations(&w, &x, &acc);
        assert_eq!(dev[3], 1 << 18);
        assert!(dev.iter().enumerate().all(|(j, &d)| j == 3 || d == 0));
        assert_eq!(msd(&dev), 1 << 18);
        let rdev = row_deviations(&w, &x, &acc);
        assert_eq!(rdev[2], 1 << 18);
    }

    #[test]
    fn multiple_errors_in_one_column_accumulate() {
        let (w, x, mut acc) = random_operands(3, 4, 4, 4);
        acc[(0, 1)] = acc[(0, 1)].wrapping_add(100);
        acc[(2, 1)] = acc[(2, 1)].wrapping_add(-40);
        let dev = column_deviations(&w, &x, &acc);
        assert_eq!(dev[1], 60);
        assert_eq!(msd(&dev), 60);
    }

    #[test]
    fn msd_reflects_sum_of_all_injected_errors() {
        let (w, x, mut acc) = random_operands(4, 8, 8, 8);
        let errors = [
            (0usize, 0usize, 1i64 << 10),
            (3, 5, 1 << 12),
            (7, 7, -(1 << 9)),
        ];
        for &(r, c, d) in &errors {
            acc[(r, c)] = acc[(r, c)].wrapping_add(d as i32);
        }
        let dev = column_deviations(&w, &x, &acc);
        let expected_msd: i64 = errors.iter().map(|&(_, _, d)| d).sum();
        assert_eq!(msd(&dev), expected_msd);
    }

    #[test]
    fn group_deviations_sum_to_batch_deviations_and_localise_errors() {
        let (w, x, mut acc) = random_operands(9, 9, 7, 5);
        let parts = RowPartition::from_lens(&[3, 0, 4, 2]);
        // Corrupt one row of group 2 and one row of group 3.
        acc[(4, 1)] = acc[(4, 1)].wrapping_add(1 << 16);
        acc[(8, 3)] = acc[(8, 3)].wrapping_add(-(1 << 12));

        let groups = group_column_deviations(&w, &x, &acc, &parts);
        assert_eq!(groups.len(), 4);
        assert!(groups[0].iter().all(|&d| d == 0));
        assert!(groups[1].iter().all(|&d| d == 0), "empty group stays clean");
        assert_eq!(groups[2][1], 1 << 16);
        assert_eq!(groups[3][3], -(1 << 12));

        // Group deviations partition the batch-wide deviation vector exactly.
        let total = column_deviations(&w, &x, &acc);
        for j in 0..total.len() {
            let sum: i64 = groups.iter().map(|g| g[j]).sum();
            assert_eq!(sum, total[j], "column {j}");
        }

        assert_eq!(deviating_groups(&w, &x, &acc, &parts), vec![2, 3]);
    }

    #[test]
    fn clean_batched_gemm_attributes_to_no_group() {
        let (w, x, acc) = random_operands(10, 8, 6, 4);
        let parts = RowPartition::from_lens(&[4, 4]);
        assert!(deviating_groups(&w, &x, &acc, &parts).is_empty());
    }

    #[test]
    fn shard_attribution_slices_the_deviation_vector_at_stripe_boundaries() {
        // 10 columns over 4 shards: stripes 0..3, 3..6, 6..8, 8..10 (ragged).
        let mut dev = vec![0i64; 10];
        dev[4] = 1 << 14; // shard 1
        dev[8] = -(1 << 9); // shard 3
        dev[9] = 1 << 9; // shard 3 — cancels shard 3's MSD but not its columns
        assert_eq!(
            shard_deviation_sums(&dev, 4),
            vec![0, 1 << 14, 0, 0],
            "shard sums slice at the same boundaries the TP dispatch shards on"
        );
        assert_eq!(
            deviating_shards(&dev, 4),
            vec![1, 3],
            "cancelling errors within a stripe still implicate the shard"
        );
        assert!(deviating_shards(&[0i64; 10], 4).is_empty());

        let mut sums = Vec::new();
        shard_deviation_sums_into(&dev, 2, &mut sums);
        assert_eq!(sums, vec![1 << 14, 0]);
    }

    #[test]
    fn shard_attribution_agrees_with_an_actual_sharded_corruption() {
        let (w, x, mut acc) = random_operands(12, 4, 8, 12);
        // Corrupt a column owned by shard 2 of 3 (stripes 0..4, 4..8, 8..12).
        acc[(1, 9)] = acc[(1, 9)].wrapping_add(1 << 20);
        let dev = column_deviations(&w, &x, &acc);
        assert_eq!(deviating_shards(&dev, 3), vec![2]);
        assert_eq!(shard_deviation_sums(&dev, 3), vec![0, 0, 1 << 20]);
    }

    #[test]
    fn operand_col_sums_match_manual_computation() {
        let w = MatI8::from_vec(2, 3, vec![1, -2, 3, 4, 5, -6]).unwrap();
        assert_eq!(operand_col_sums(&w), vec![5, 3, -3]);
    }

    #[test]
    fn expected_checksum_equals_observed_for_clean_gemm() {
        let (w, x, acc) = random_operands(5, 10, 12, 9);
        assert_eq!(expected_col_checksum(&w, &x), observed_col_checksum(&acc));
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn shape_mismatch_is_detected() {
        let w = MatI8::zeros(2, 3);
        let x = MatI8::zeros(3, 2);
        let acc = MatI32::zeros(3, 2);
        let _ = column_deviations(&w, &x, &acc);
    }

    #[test]
    fn packed_weight_scrub_flags_corrupted_replica_bytes() {
        use rand::Rng;
        let mut r = rng::seeded(11);
        let w = MatI8::from_fn(37, 21, |_, _| r.gen_range(-40..=40));
        let mut pb = PackedMatI8::from_mat(w);

        // Fresh pack: the resident tiles agree with the pack-time checksums.
        let clean = packed_weight_deviations(&pb);
        assert_eq!(clean.len(), 21);
        assert!(clean.iter().all(|&d| d == 0));

        // Flip a byte of the packed replica in place. The first tile byte is element
        // (row 0, col 0) of block 0 in the interleaved layout, so the deviation must land
        // in column 0 with exactly the injected delta.
        let before = pb.tiles()[0];
        pb.tiles_mut()[0] = before.wrapping_add(17);
        let delta = pb.tiles_mut()[0] as i64 - before as i64;
        let mut dev = Vec::new();
        packed_weight_deviations_into(&pb, &mut dev);
        assert_eq!(dev[0], delta);
        assert!(dev.iter().skip(1).all(|&d| d == 0));

        // Restoring the byte clears the deviation again.
        pb.tiles_mut()[0] = before;
        packed_weight_deviations_into(&pb, &mut dev);
        assert!(dev.iter().all(|&d| d == 0));
    }

    #[test]
    fn checksums_survive_worst_case_magnitudes_without_overflow() {
        // 127-valued 64x64 operands: column checksums reach 127*127*64 ≈ 1.03e6 per column and
        // the MSD reaches ~6.6e7 — comfortably inside i64 but past i16/i32 territory when
        // summed across columns, which is exactly why the checksum path uses i64.
        let w = MatI8::filled(64, 64, 127);
        let x = MatI8::filled(64, 64, 127);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        let dev = column_deviations(&w, &x, &acc);
        assert!(dev.iter().all(|&d| d == 0));
        let expected = expected_col_checksum(&w, &x);
        assert!(expected.iter().all(|&e| e == 127i64 * 127 * 64 * 64));
    }
}
