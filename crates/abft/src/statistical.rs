//! Statistical ABFT — the ReaLM detector (Sec. V-A).
//!
//! The detector computes the per-column deviations of a GEMM result, summarises them as
//! `(MSD, freq_eff)` and consults the fitted [`CriticalRegion`]:
//!
//! 1. `MSD` is accumulated from the column deviations (the same quantity ApproxABFT uses);
//! 2. the magnitude threshold `θ_mag = b − (a−1)·log₂(MSD)` is evaluated;
//! 3. `freq_eff = countif(|deviation| > 2^θ_mag)` counts only the *significant* deviations;
//! 4. recovery fires only if `freq_eff > θ_freq`.
//!
//! Compared with classical ABFT (recover on any mismatch) and ApproxABFT (recover on large
//! MSD), this policy ignores both sporadic large errors and frequent tiny errors — the two
//! regimes the characterization shows to be harmless for resilient components — and therefore
//! saves most of the recovery energy while keeping model quality inside the budget.

use crate::checksum;
use crate::critical_region::CriticalRegion;
use crate::detector::{AbftDetector, Detection};
use serde::{Deserialize, Serialize};

/// The ReaLM statistical ABFT detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatisticalAbft {
    region: CriticalRegion,
}

impl StatisticalAbft {
    /// Creates a detector from a fitted critical region.
    pub fn new(region: CriticalRegion) -> Self {
        Self { region }
    }

    /// Detector parametrised for a resilient component (default region of Fig. 6(a)).
    pub fn resilient() -> Self {
        Self::new(CriticalRegion::resilient_default())
    }

    /// Detector parametrised for a sensitive component (default region of Fig. 6(b)).
    pub fn sensitive() -> Self {
        Self::new(CriticalRegion::sensitive_default())
    }

    /// The critical region driving the decisions.
    pub fn region(&self) -> &CriticalRegion {
        &self.region
    }

    /// Evaluates the detector on a precomputed deviation vector.
    ///
    /// Kept as an inherent alias of [`AbftDetector::evaluate`] because the hardware
    /// statistical unit (and its behavioural model in [`crate::statistical_unit`]) operates
    /// on exactly this signature: checksum deviations in, recovery decision out.
    pub fn evaluate_deviations(&self, deviations: &[i64]) -> Detection {
        let msd = checksum::msd(deviations);
        let errors_detected = deviations.iter().any(|&d| d != 0);
        if !errors_detected {
            return Detection::clean();
        }
        let theta_mag = self.region.theta_mag_log2(msd);
        let threshold = theta_mag.exp2();
        let effective_frequency = deviations
            .iter()
            .filter(|&&d| (d.unsigned_abs() as f64) > threshold)
            .count();
        Detection {
            trigger_recovery: self.region.requires_recovery(effective_frequency, msd),
            errors_detected,
            msd,
            effective_frequency,
            theta_mag_log2: Some(theta_mag),
        }
    }
}

impl AbftDetector for StatisticalAbft {
    fn evaluate(&self, deviations: &[i64]) -> Detection {
        self.evaluate_deviations(deviations)
    }

    fn name(&self) -> &'static str {
        "statistical-abft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::ClassicalAbft;
    use realm_tensor::gemm;
    use realm_tensor::{MatI32, MatI8};

    fn operands(n: usize) -> (MatI8, MatI8, MatI32) {
        let w = MatI8::from_fn(n, n, |r, c| ((r * 5 + c) % 9) as i8 - 4);
        let x = MatI8::from_fn(n, n, |r, c| ((r + 3 * c) % 7) as i8 - 3);
        let acc = gemm::gemm_i8(&w, &x).unwrap();
        (w, x, acc)
    }

    #[test]
    fn clean_gemm_is_not_flagged() {
        let (w, x, acc) = operands(16);
        let verdict = StatisticalAbft::resilient().inspect(&w, &x, &acc);
        assert_eq!(verdict, Detection::clean());
    }

    #[test]
    fn sporadic_large_error_is_tolerated_on_resilient_components() {
        // One huge error: classical ABFT recovers, statistical ABFT (resilient region) does
        // not, because freq_eff = 1 ≤ θ_freq.
        let (w, x, mut acc) = operands(16);
        acc[(3, 7)] = acc[(3, 7)].wrapping_add(1 << 28);
        let classical = ClassicalAbft::new().inspect(&w, &x, &acc);
        let statistical = StatisticalAbft::resilient().inspect(&w, &x, &acc);
        assert!(classical.trigger_recovery);
        assert!(statistical.errors_detected);
        assert!(!statistical.trigger_recovery);
        assert_eq!(statistical.effective_frequency, 1);
    }

    #[test]
    fn frequent_small_errors_are_tolerated() {
        // Many tiny errors: each deviation stays below θ_mag, so freq_eff is 0 even though
        // dozens of columns deviate.
        let (w, x, mut acc) = operands(32);
        for j in 0..32usize {
            acc[(j % 32, j)] = acc[(j % 32, j)].wrapping_add(64);
        }
        let verdict = StatisticalAbft::resilient().inspect(&w, &x, &acc);
        assert!(verdict.errors_detected);
        assert_eq!(verdict.effective_frequency, 0);
        assert!(!verdict.trigger_recovery);
    }

    #[test]
    fn moderate_frequency_of_large_errors_triggers_recovery() {
        // The damaging regime from Q1.4: a dozen medium-large errors.
        let (w, x, mut acc) = operands(32);
        for j in 0..12usize {
            acc[(j, j * 2)] = acc[(j, j * 2)].wrapping_add(1 << 24);
        }
        let verdict = StatisticalAbft::resilient().inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery);
        assert!(verdict.effective_frequency > 8);
    }

    #[test]
    fn sensitive_region_triggers_on_single_significant_error() {
        let (w, x, mut acc) = operands(16);
        acc[(2, 2)] = acc[(2, 2)].wrapping_add(1 << 26);
        let verdict = StatisticalAbft::sensitive().inspect(&w, &x, &acc);
        assert!(verdict.trigger_recovery);
    }

    #[test]
    fn theta_mag_is_reported() {
        let (w, x, mut acc) = operands(16);
        acc[(1, 1)] = acc[(1, 1)].wrapping_add(1 << 20);
        let verdict = StatisticalAbft::resilient().inspect(&w, &x, &acc);
        let region = CriticalRegion::resilient_default();
        let expected = region.theta_mag_log2(verdict.msd);
        assert!((verdict.theta_mag_log2.unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn evaluate_deviations_matches_full_inspection() {
        let (w, x, mut acc) = operands(16);
        acc[(0, 5)] = acc[(0, 5)].wrapping_add(1 << 22);
        acc[(9, 5)] = acc[(9, 5)].wrapping_add(1 << 22);
        let detector = StatisticalAbft::resilient();
        let via_inspect = detector.inspect(&w, &x, &acc);
        let deviations = checksum::column_deviations(&w, &x, &acc);
        let via_deviations = detector.evaluate_deviations(&deviations);
        assert_eq!(via_inspect, via_deviations);
    }

    #[test]
    fn recovery_rate_is_strictly_lower_than_classical_under_random_faults() {
        use rand::Rng;
        let mut rng = realm_tensor::rng::seeded(77);
        let classical = ClassicalAbft::new();
        let statistical = StatisticalAbft::resilient();
        let mut classical_recoveries = 0;
        let mut statistical_recoveries = 0;
        for _ in 0..60 {
            let (w, x, mut acc) = operands(24);
            // Sprinkle 1–3 random single-bit flips at random positions/bits.
            for _ in 0..rng.gen_range(1..=3) {
                let r = rng.gen_range(0..24);
                let c = rng.gen_range(0..24);
                let bit = rng.gen_range(0..31);
                acc[(r, c)] ^= 1 << bit;
            }
            if classical.inspect(&w, &x, &acc).trigger_recovery {
                classical_recoveries += 1;
            }
            if statistical.inspect(&w, &x, &acc).trigger_recovery {
                statistical_recoveries += 1;
            }
        }
        assert_eq!(
            classical_recoveries, 60,
            "classical recovers every corrupted GEMM"
        );
        assert!(
            statistical_recoveries < classical_recoveries / 4,
            "statistical ABFT should skip most recoveries ({statistical_recoveries}/60)"
        );
    }
}
