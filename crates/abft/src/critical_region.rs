//! The critical error region (Fig. 6) and its fitting from characterization data.
//!
//! The paper summarises its magnitude/frequency characterization (Q1.4) with a *critical
//! region* in the `(log₂ mag, log₂ freq)` plane: error patterns inside the region degrade the
//! model beyond the acceptable budget and must be recovered; patterns outside it are ignored.
//! The region's boundary consists of
//!
//! * a **horizontal line** `log₂(freq) = θ_freq`: below this frequency, errors are tolerable
//!   regardless of their magnitude (resilient components only);
//! * an **inclined line** with slope `a > 1` and intercept `−b`, from which the paper derives
//!   the run-time magnitude threshold `θ_mag = b − (a−1)·log₂(MSD)`: deviations smaller than
//!   `2^θ_mag` are ignored when counting the effective error frequency.
//!
//! [`CriticalRegion::fit`] recovers `a`, `b` and `θ_freq` from a grid of characterization
//! samples, which is how `realm-core` turns an injection campaign into detector parameters.

use serde::{Deserialize, Serialize};

/// One characterization sample: an error pattern and the model degradation it caused.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionSample {
    /// log₂ of the injected error magnitude (accumulator LSBs).
    pub log2_mag: f64,
    /// log₂ of the injected error frequency (errors per GEMM).
    pub log2_freq: f64,
    /// Measured degradation of the task metric (e.g. perplexity increase or accuracy drop),
    /// in the same units as the acceptance budget.
    pub degradation: f64,
}

/// Fitted critical-region parameters for one network component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalRegion {
    /// Slope of the inclined boundary (`a > 1` for resilient components).
    pub a: f64,
    /// Intercept parameter of the inclined boundary.
    pub b: f64,
    /// log₂ of the frequency threshold below which errors are always tolerable. Sensitive
    /// components effectively have `θ_freq = −∞` (any counted error triggers recovery),
    /// represented here by a large negative value.
    pub theta_freq_log2: f64,
}

impl CriticalRegion {
    /// A conservative region that triggers recovery whenever any significant error is seen —
    /// appropriate for sensitive components (`O`, `FC2`, `Down`) whose tolerance is minimal.
    pub fn sensitive_default() -> Self {
        Self {
            a: 1.2,
            b: 18.0,
            theta_freq_log2: -1.0,
        }
    }

    /// A permissive region representative of resilient components (`Q`, `K`, `V`, `QKᵀ`,
    /// `SV`, `FC1`, `Gate`, `Up`): sporadic large errors (up to a handful per GEMM) and
    /// frequent small errors both fall outside the critical region.
    pub fn resilient_default() -> Self {
        Self {
            a: 1.8,
            b: 25.0,
            theta_freq_log2: 1.6,
        }
    }

    /// Creates a region from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `a <= 1.0` (the derivation of `θ_mag` requires a slope greater than one).
    pub fn new(a: f64, b: f64, theta_freq_log2: f64) -> Self {
        assert!(
            a > 1.0,
            "the inclined boundary requires slope a > 1 (got {a})"
        );
        Self {
            a,
            b,
            theta_freq_log2,
        }
    }

    /// The frequency threshold as a linear error count.
    pub fn theta_freq(&self) -> f64 {
        self.theta_freq_log2.exp2()
    }

    /// The run-time magnitude threshold `θ_mag = b − (a−1)·log₂(MSD)` (log₂ domain).
    ///
    /// A zero MSD means no deviation at all; the threshold is then irrelevant and returned as
    /// `b` (its maximum).
    pub fn theta_mag_log2(&self, msd: i64) -> f64 {
        let magnitude = msd.unsigned_abs();
        if magnitude == 0 {
            return self.b;
        }
        self.b - (self.a - 1.0) * (magnitude as f64).log2()
    }

    /// Whether an error pattern summarised by `(effective_frequency, msd)` falls inside the
    /// critical region, i.e. whether recovery must be triggered.
    pub fn requires_recovery(&self, effective_frequency: usize, msd: i64) -> bool {
        if effective_frequency == 0 || msd == 0 {
            return false;
        }
        (effective_frequency as f64) > self.theta_freq()
    }

    /// A scalar sensitivity score: *higher means more sensitive*. The score is
    /// `−θ_freq_log2` — the horizontal boundary dominates the region's reach, because it
    /// alone decides whether a component tolerates sporadic errors at all (a sensitive
    /// region with `θ_freq < 1` recovers on *any* counted error, whereas the inclined
    /// boundary only filters which deviations are counted). Regions with equal frequency
    /// thresholds are ordered by their inclined boundaries in
    /// [`rank_by_sensitivity`], not here.
    pub fn sensitivity_log2(&self) -> f64 {
        -self.theta_freq_log2
    }

    /// Whether this region exhibits sensitive-component behaviour: a frequency threshold
    /// below one error per GEMM, meaning any counted error triggers recovery.
    pub fn is_sensitive(&self) -> bool {
        self.theta_freq() < 1.0
    }

    /// Fits the region from characterization samples under a degradation budget.
    ///
    /// * `θ_freq` is the largest sampled `log₂(freq)` such that **every** sample at or below
    ///   that frequency stays within the budget (the horizontal boundary of Fig. 6(a)). If
    ///   even the lowest sampled frequency violates the budget, `θ_freq` is set below it
    ///   (sensitive-component behaviour, Fig. 6(b)).
    /// * The inclined boundary is a least-squares fit of the acceptable/critical transition
    ///   points in the `(log₂ MSD, log₂ mag)` plane: for each sampled MSD diagonal, the
    ///   largest magnitude that stays within budget becomes one point `(log₂ MSD, θ_mag)`,
    ///   and the line `θ_mag = b − (a−1)·log₂ MSD` is fitted through those points.
    ///
    /// Returns `None` if there are no samples, or if no transition points exist (e.g. all
    /// samples acceptable — there is no critical region to fit).
    pub fn fit(samples: &[RegionSample], budget: f64) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        // Horizontal boundary: frequencies whose *worst-case* degradation over all magnitudes
        // stays within budget.
        let mut freqs: Vec<f64> = samples.iter().map(|s| s.log2_freq).collect();
        freqs.sort_by(|p, q| p.partial_cmp(q).expect("finite frequencies"));
        freqs.dedup_by(|p, q| (*p - *q).abs() < 1e-9);
        let mut theta_freq_log2 = freqs[0] - 1.0;
        for &f in &freqs {
            let worst = samples
                .iter()
                .filter(|s| (s.log2_freq - f).abs() < 1e-9)
                .map(|s| s.degradation)
                .fold(0.0f64, f64::max);
            if worst <= budget {
                theta_freq_log2 = f;
            } else {
                break;
            }
        }

        // Inclined boundary: for each MSD diagonal, find the largest acceptable magnitude.
        let mut transition_points: Vec<(f64, f64)> = Vec::new();
        let mut msds: Vec<f64> = samples.iter().map(|s| s.log2_mag + s.log2_freq).collect();
        msds.sort_by(|p, q| p.partial_cmp(q).expect("finite MSDs"));
        msds.dedup_by(|p, q| (*p - *q).abs() < 1e-9);
        for &m in &msds {
            // Only samples above the frequency cap are relevant for the inclined boundary:
            // everything at or below θ_freq is already tolerated by the horizontal boundary.
            let diagonal: Vec<&RegionSample> = samples
                .iter()
                .filter(|s| {
                    (s.log2_mag + s.log2_freq - m).abs() < 1e-9
                        && s.log2_freq > theta_freq_log2 + 1e-9
                })
                .collect();
            let has_critical = diagonal.iter().any(|s| s.degradation > budget);
            if !has_critical {
                continue;
            }
            let acceptable_max_mag = diagonal
                .iter()
                .filter(|s| s.degradation <= budget)
                .map(|s| s.log2_mag)
                .fold(f64::NEG_INFINITY, f64::max);
            if acceptable_max_mag.is_finite() {
                transition_points.push((m, acceptable_max_mag));
            }
        }
        if transition_points.len() < 2 {
            return None;
        }
        // Least-squares fit of θ_mag = b − (a−1)·log₂(MSD)  ⇔  y = b − slope·x.
        let n = transition_points.len() as f64;
        let sx: f64 = transition_points.iter().map(|p| p.0).sum();
        let sy: f64 = transition_points.iter().map(|p| p.1).sum();
        let sxx: f64 = transition_points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = transition_points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom; // = -(a-1)
        let intercept = (sy - slope * sx) / n; // = b
        let a = (1.0 - slope).max(1.0 + 1e-6);
        Some(Self {
            a,
            b: intercept,
            theta_freq_log2,
        })
    }
}

/// Ranks keyed regions from most to least sensitive (descending
/// [`CriticalRegion::sensitivity_log2`]; ties break on the intercept `b`, ascending, so
/// the ordering is total and deterministic). This is the spatial-protection order an
/// adaptive controller uses: the most sensitive components earn a stricter scheme first
/// and give it up last.
pub fn rank_by_sensitivity<K: Copy>(regions: &[(K, CriticalRegion)]) -> Vec<K> {
    let mut indexed: Vec<usize> = (0..regions.len()).collect();
    indexed.sort_by(|&i, &j| {
        let (si, sj) = (
            regions[i].1.sensitivity_log2(),
            regions[j].1.sensitivity_log2(),
        );
        sj.partial_cmp(&si)
            .expect("finite sensitivity scores")
            .then(
                regions[i]
                    .1
                    .b
                    .partial_cmp(&regions[j].1.b)
                    .expect("finite intercepts"),
            )
            .then(i.cmp(&j))
    });
    indexed.into_iter().map(|i| regions[i].0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic characterization surface: degradation is high only when both the frequency
    /// exceeds 2^3 and the magnitude exceeds the diagonal boundary mag_thr = 24 − 0.8·log2(MSD).
    fn synthetic_samples() -> Vec<RegionSample> {
        let mut samples = Vec::new();
        for log2_mag in (6..=30).step_by(2) {
            for log2_freq in 0..=12 {
                let log2_msd = log2_mag as f64 + log2_freq as f64;
                let mag_threshold = 24.0 - 0.8 * log2_msd;
                let critical = (log2_freq as f64) > 3.0 && (log2_mag as f64) > mag_threshold;
                samples.push(RegionSample {
                    log2_mag: log2_mag as f64,
                    log2_freq: log2_freq as f64,
                    degradation: if critical { 5.0 } else { 0.05 },
                });
            }
        }
        samples
    }

    #[test]
    fn theta_mag_decreases_with_msd() {
        let region = CriticalRegion::resilient_default();
        let small = region.theta_mag_log2(1 << 16);
        let large = region.theta_mag_log2(1 << 28);
        assert!(
            large < small,
            "larger MSD must lower the magnitude threshold"
        );
        assert_eq!(region.theta_mag_log2(0), region.b);
    }

    #[test]
    fn recovery_requires_exceeding_frequency_threshold() {
        let region = CriticalRegion::resilient_default(); // θ_freq = 2^1.6 ≈ 3
        assert!(!region.requires_recovery(0, 0));
        assert!(!region.requires_recovery(2, 1 << 24));
        assert!(region.requires_recovery(9, 1 << 24));
    }

    #[test]
    fn sensitive_default_triggers_on_any_counted_error() {
        let region = CriticalRegion::sensitive_default(); // θ_freq = 2^-1 = 0.5
        assert!(region.requires_recovery(1, 1 << 22));
        assert!(!region.requires_recovery(0, 0));
    }

    #[test]
    #[should_panic(expected = "slope a > 1")]
    fn slope_below_one_is_rejected() {
        let _ = CriticalRegion::new(0.9, 10.0, 2.0);
    }

    #[test]
    fn fit_recovers_synthetic_boundary() {
        let samples = synthetic_samples();
        let region = CriticalRegion::fit(&samples, 0.3).expect("fit must succeed");
        // Horizontal boundary at log2(freq) = 3.
        assert!(
            (region.theta_freq_log2 - 3.0).abs() <= 1.0,
            "θ_freq {}",
            region.theta_freq_log2
        );
        // Slope a − 1 should approximate the synthetic 0.8.
        assert!((region.a - 1.8).abs() < 0.4, "a {}", region.a);
        // Intercept should land in the neighbourhood of the synthetic 24; the coarse 2-bit
        // sampling grid biases the transition points low, so the tolerance is generous.
        assert!((region.b - 24.0).abs() < 7.0, "b {}", region.b);
        // Functionally, the fitted region must tolerate a sporadic large error but flag a
        // burst of significant errors, like the synthetic ground truth does.
        assert!(!region.requires_recovery(1, 1 << 28));
        assert!(region.requires_recovery(64, 64 << 24));
    }

    #[test]
    fn fit_handles_all_acceptable_data() {
        let samples: Vec<RegionSample> = (0..10)
            .map(|i| RegionSample {
                log2_mag: i as f64,
                log2_freq: 1.0,
                degradation: 0.0,
            })
            .collect();
        assert!(CriticalRegion::fit(&samples, 0.3).is_none());
        assert!(CriticalRegion::fit(&[], 0.3).is_none());
    }

    #[test]
    fn fit_marks_sensitive_behaviour_with_low_theta_freq() {
        // Every injection, even a single error, exceeds the budget: θ_freq must fall below
        // the smallest sampled frequency.
        let mut samples = Vec::new();
        for log2_mag in (10..=28).step_by(2) {
            for log2_freq in 0..=6 {
                samples.push(RegionSample {
                    log2_mag: log2_mag as f64,
                    log2_freq: log2_freq as f64,
                    degradation: if log2_mag >= 20 { 9.0 } else { 0.0 },
                });
            }
        }
        let region = CriticalRegion::fit(&samples, 0.3).expect("fit must succeed");
        assert!(region.theta_freq_log2 < 0.0);
    }

    #[test]
    fn theta_freq_roundtrips_log_and_linear() {
        let region = CriticalRegion::new(1.5, 20.0, 3.0);
        assert!((region.theta_freq() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_orders_the_default_regions() {
        let sensitive = CriticalRegion::sensitive_default();
        let resilient = CriticalRegion::resilient_default();
        assert!(sensitive.sensitivity_log2() > resilient.sensitivity_log2());
        assert!(sensitive.is_sensitive());
        assert!(!resilient.is_sensitive());
    }

    #[test]
    fn rank_by_sensitivity_puts_sensitive_regions_first() {
        let regions = [
            ("resilient", CriticalRegion::resilient_default()),
            ("sensitive", CriticalRegion::sensitive_default()),
            ("middle", CriticalRegion::new(1.5, 21.0, 0.5)),
        ];
        let ranked = rank_by_sensitivity(&regions);
        assert_eq!(ranked, vec!["sensitive", "middle", "resilient"]);
        // Identical regions rank deterministically by input order.
        let tied = [(0usize, CriticalRegion::resilient_default()); 3];
        let tied = [tied[0], (1, tied[1].1), (2, tied[2].1)];
        assert_eq!(rank_by_sensitivity(&tied), vec![0, 1, 2]);
    }
}
