//! Recovery policies and their cost accounting.
//!
//! When a detector requests recovery, the system must restore a correct result. The paper
//! assumes recovery by **re-executing the affected GEMM at nominal voltage** (where the BER
//! is negligible); other schemes in the comparison recover differently: ThunderVolt/Razor
//! replay individual pipeline stages per detected timing error, DMR re-runs the mismatching
//! computation. This module quantifies the work each policy performs so the energy model can
//! price it.

use realm_systolic::protection::ProtectionScheme;
use serde::{Deserialize, Serialize};

/// How a recovery is carried out when a detector requests one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Re-execute the whole affected GEMM at the given safe voltage (the paper's assumption:
    /// recomputation at nominal voltage).
    RecomputeAtVoltage {
        /// Supply voltage used for the re-execution, in volts.
        voltage: f64,
    },
    /// Replay only the pipeline stages that captured a timing error (Razor / ThunderVolt):
    /// cost is a fixed number of cycles per detected error rather than a full GEMM.
    PerErrorReplay {
        /// Replay cycles charged per detected error.
        cycles_per_error: u64,
    },
    /// No recovery: errors are left in place (the "no protection" baseline).
    None,
}

impl RecoveryPolicy {
    /// The paper's default: recompute at the nominal 0.9 V.
    pub fn recompute_at_nominal() -> Self {
        RecoveryPolicy::RecomputeAtVoltage { voltage: 0.9 }
    }

    /// The recovery policy conventionally paired with each protection scheme in the
    /// evaluation's comparison (Fig. 9).
    pub fn default_for_scheme(scheme: ProtectionScheme) -> Self {
        match scheme {
            ProtectionScheme::None => RecoveryPolicy::None,
            ProtectionScheme::RazorFfs | ProtectionScheme::ThunderVolt => {
                RecoveryPolicy::PerErrorReplay {
                    cycles_per_error: 2,
                }
            }
            ProtectionScheme::Dmr
            | ProtectionScheme::ClassicalAbft
            | ProtectionScheme::ApproxAbft
            | ProtectionScheme::StatisticalAbft => RecoveryPolicy::recompute_at_nominal(),
        }
    }
}

/// Accumulated recovery work over a protected inference run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Number of GEMMs that were inspected.
    pub gemms_inspected: u64,
    /// Number of GEMMs in which the detector saw any error.
    pub gemms_with_errors: u64,
    /// Number of recoveries triggered.
    pub recoveries_triggered: u64,
    /// MACs re-executed by recoveries.
    pub recovery_macs: u64,
    /// Extra cycles spent on recovery (re-execution or replay).
    pub recovery_cycles: u64,
}

impl RecoveryStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of inspected GEMMs that triggered a recovery.
    pub fn recovery_rate(&self) -> f64 {
        if self.gemms_inspected == 0 {
            0.0
        } else {
            self.recoveries_triggered as f64 / self.gemms_inspected as f64
        }
    }

    /// Records one inspected GEMM.
    ///
    /// * `had_errors` — whether the detector saw any deviation;
    /// * `triggered` — whether recovery was requested;
    /// * `gemm_macs` / `gemm_cycles` — cost of re-executing this GEMM;
    /// * `detected_errors` — error count used by per-error replay policies.
    pub fn record(
        &mut self,
        policy: &RecoveryPolicy,
        had_errors: bool,
        triggered: bool,
        gemm_macs: u64,
        gemm_cycles: u64,
        detected_errors: u64,
    ) {
        self.gemms_inspected += 1;
        if had_errors {
            self.gemms_with_errors += 1;
        }
        if !triggered {
            return;
        }
        self.recoveries_triggered += 1;
        match policy {
            RecoveryPolicy::RecomputeAtVoltage { .. } => {
                self.recovery_macs += gemm_macs;
                self.recovery_cycles += gemm_cycles;
            }
            RecoveryPolicy::PerErrorReplay { cycles_per_error } => {
                self.recovery_cycles += cycles_per_error * detected_errors;
            }
            RecoveryPolicy::None => {}
        }
    }

    /// Merges statistics from another run (used when aggregating Monte-Carlo trials).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.gemms_inspected += other.gemms_inspected;
        self.gemms_with_errors += other.gemms_with_errors;
        self.recoveries_triggered += other.recoveries_triggered;
        self.recovery_macs += other.recovery_macs;
        self.recovery_cycles += other.recovery_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_match_scheme_semantics() {
        assert_eq!(
            RecoveryPolicy::default_for_scheme(ProtectionScheme::None),
            RecoveryPolicy::None
        );
        assert!(matches!(
            RecoveryPolicy::default_for_scheme(ProtectionScheme::ThunderVolt),
            RecoveryPolicy::PerErrorReplay { .. }
        ));
        assert!(matches!(
            RecoveryPolicy::default_for_scheme(ProtectionScheme::StatisticalAbft),
            RecoveryPolicy::RecomputeAtVoltage { voltage } if (voltage - 0.9).abs() < 1e-9
        ));
    }

    #[test]
    fn recompute_policy_charges_full_gemm() {
        let mut stats = RecoveryStats::new();
        let policy = RecoveryPolicy::recompute_at_nominal();
        stats.record(&policy, true, true, 1_000_000, 5_000, 3);
        assert_eq!(stats.recovery_macs, 1_000_000);
        assert_eq!(stats.recovery_cycles, 5_000);
        assert_eq!(stats.recoveries_triggered, 1);
        assert_eq!(stats.gemms_with_errors, 1);
    }

    #[test]
    fn replay_policy_charges_per_error() {
        let mut stats = RecoveryStats::new();
        let policy = RecoveryPolicy::PerErrorReplay {
            cycles_per_error: 2,
        };
        stats.record(&policy, true, true, 1_000_000, 5_000, 7);
        assert_eq!(stats.recovery_macs, 0);
        assert_eq!(stats.recovery_cycles, 14);
    }

    #[test]
    fn untriggered_inspections_cost_nothing() {
        let mut stats = RecoveryStats::new();
        let policy = RecoveryPolicy::recompute_at_nominal();
        stats.record(&policy, true, false, 1_000, 10, 1);
        stats.record(&policy, false, false, 1_000, 10, 0);
        assert_eq!(stats.recoveries_triggered, 0);
        assert_eq!(stats.recovery_macs, 0);
        assert_eq!(stats.gemms_inspected, 2);
        assert_eq!(stats.gemms_with_errors, 1);
        assert_eq!(stats.recovery_rate(), 0.0);
    }

    #[test]
    fn none_policy_never_accumulates_recovery_work() {
        let mut stats = RecoveryStats::new();
        stats.record(&RecoveryPolicy::None, true, true, 1_000, 10, 5);
        assert_eq!(stats.recovery_macs, 0);
        assert_eq!(stats.recovery_cycles, 0);
        assert_eq!(stats.recoveries_triggered, 1);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = RecoveryStats::new();
        a.record(
            &RecoveryPolicy::recompute_at_nominal(),
            true,
            true,
            100,
            5,
            1,
        );
        let mut b = RecoveryStats::new();
        b.record(
            &RecoveryPolicy::recompute_at_nominal(),
            true,
            true,
            200,
            7,
            1,
        );
        b.record(
            &RecoveryPolicy::recompute_at_nominal(),
            false,
            false,
            200,
            7,
            0,
        );
        a.merge(&b);
        assert_eq!(a.gemms_inspected, 3);
        assert_eq!(a.recovery_macs, 300);
        assert_eq!(a.recovery_cycles, 12);
        assert!((a.recovery_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
