//! # realm-abft
//!
//! Algorithm-based fault tolerance for quantized GEMMs: the checksum mathematics, the
//! detection policies compared in the paper, and the paper's contribution — **statistical
//! ABFT** driven by an empirically fitted critical error region.
//!
//! ABFT (Huang & Abraham, 1984) augments a GEMM `Y = W·X` with checksums: the column sums of
//! `Y` must equal `(eᵀW)·X` when the computation is correct, so comparing the two detects
//! datapath errors without recomputing the product. The crate provides:
//!
//! * [`checksum`] — one-sided column checksums, per-column deviations and the matrix-sum
//!   deviation (MSD) used by the lightweight detection schemes the paper builds on;
//! * [`detector`] — the [`detector::AbftDetector`] trait and the [`detector::Detection`]
//!   verdict shared by all policies;
//! * [`classical`] — classical ABFT: any non-zero deviation triggers recovery;
//! * [`approx`] — ApproxABFT: recovery only when |MSD| exceeds a threshold;
//! * [`statistical`] — the ReaLM detector: per-column error statistics (magnitude and
//!   frequency) are compared against a fitted [`critical_region::CriticalRegion`], so
//!   recovery fires only when the error pattern actually endangers model quality;
//! * [`critical_region`] — the `θmag = b − (a−1)·log₂(MSD)` boundary, the `θfreq` cap and a
//!   least-squares fitting procedure from characterization data;
//! * [`statistical_unit`] — a behavioural model of the hardware statistical unit (Fig. 7(c)),
//!   including its fixed-point `log₂` approximation and cycle counts;
//! * [`recovery`] — recovery policies (recomputation at nominal voltage, per-error replay,
//!   DMR re-execution) and their cost accounting.
//!
//! # Example
//!
//! ```
//! use realm_abft::{classical::ClassicalAbft, detector::AbftDetector};
//! use realm_tensor::{MatI8, gemm};
//!
//! # fn main() -> Result<(), realm_tensor::TensorError> {
//! let w = MatI8::from_fn(4, 4, |r, c| (r + c) as i8);
//! let x = MatI8::from_fn(4, 4, |r, c| (r as i8) - (c as i8));
//! let mut acc = gemm::gemm_i8(&w, &x)?;
//! let detector = ClassicalAbft::new();
//! assert!(!detector.inspect(&w, &x, &acc).trigger_recovery);
//!
//! // Corrupt one accumulator element: classical ABFT flags it immediately.
//! acc[(1, 2)] ^= 1 << 20;
//! assert!(detector.inspect(&w, &x, &acc).trigger_recovery);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx;
pub mod checksum;
pub mod classical;
pub mod correction;
pub mod critical_region;
pub mod detector;
pub mod recovery;
pub mod statistical;
pub mod statistical_unit;

pub use approx::ApproxAbft;
pub use classical::ClassicalAbft;
pub use critical_region::{rank_by_sensitivity, CriticalRegion};
pub use detector::{AbftDetector, Detection};
pub use recovery::{RecoveryPolicy, RecoveryStats};
pub use statistical::StatisticalAbft;
