//! Synthetic multiple-choice completion task (the HellaSwag analogue).
//!
//! Each example offers one true continuation (the successor chain of the prompt) and several
//! distractor continuations (random token chains). The model scores each candidate by its
//! total log-likelihood under the prompt, and the example counts as correct when the true
//! continuation receives the highest score — the standard likelihood-ranking protocol used
//! for HellaSwag.

use crate::corpus::successor_chain;
use crate::metrics::{self, Metric};
use crate::task::Task;
use rand::Rng;
use realm_llm::weights::SyntheticLanguage;
use realm_llm::{GemmHook, Model, Result};
use realm_tensor::rng;

/// One multiple-choice example.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Example {
    prompt: Vec<u32>,
    /// Candidate continuations; index 0 is always the true one (shuffling is unnecessary
    /// because scoring is order-independent).
    candidates: Vec<Vec<u32>>,
}

/// Likelihood-ranked multiple-choice completion.
#[derive(Debug, Clone)]
pub struct HellaswagTask {
    examples: Vec<Example>,
    name: String,
}

impl HellaswagTask {
    /// Builds `num_examples` examples with `num_choices` candidates of `continuation_len`
    /// tokens each.
    ///
    /// # Panics
    ///
    /// Panics if `num_examples` is zero, `num_choices < 2` or `continuation_len` is zero.
    pub fn new(
        language: &SyntheticLanguage,
        num_examples: usize,
        num_choices: usize,
        prompt_len: usize,
        continuation_len: usize,
        seed: u64,
    ) -> Self {
        assert!(num_examples > 0, "the task needs at least one example");
        assert!(
            num_choices >= 2,
            "multiple choice needs at least two candidates"
        );
        assert!(
            prompt_len > 0 && continuation_len > 0,
            "sizes must be non-zero"
        );
        let mut rng_ = rng::seeded(rng::derive_seed(seed, 0x8E11A));
        let vocab = language.vocab_size() as u32;
        let examples = (0..num_examples)
            .map(|_| {
                let start = rng_.gen_range(0..vocab);
                let mut prompt = vec![start];
                prompt.extend(successor_chain(language, start, prompt_len - 1));
                let last = *prompt.last().expect("prompt is non-empty");
                let mut candidates = vec![successor_chain(language, last, continuation_len)];
                for _ in 1..num_choices {
                    candidates.push(
                        (0..continuation_len)
                            .map(|_| rng_.gen_range(0..vocab))
                            .collect(),
                    );
                }
                Example { prompt, candidates }
            })
            .collect();
        Self {
            examples,
            name: "hellaswag-synthetic".to_string(),
        }
    }

    /// A small instance for unit tests.
    pub fn quick(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 8, 4, 5, 4, seed)
    }

    /// A standard-sized instance for benchmark harnesses.
    pub fn standard(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 20, 4, 8, 6, seed)
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the task has no examples (never the case for constructed tasks).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    fn candidate_log_likelihood(
        model: &Model,
        prompt: &[u32],
        candidate: &[u32],
        hook: &mut dyn GemmHook,
    ) -> Result<f64> {
        // Score the candidate by teacher forcing: prefill prompt + candidate and sum the
        // log-probabilities of the candidate tokens.
        let mut full = prompt.to_vec();
        full.extend_from_slice(candidate);
        let (logits, _) = model.prefill(&full, hook)?;
        let mut total = 0.0f64;
        for (i, &token) in candidate.iter().enumerate() {
            let position = prompt.len() + i - 1;
            total += metrics::log_prob(logits.row(position), token as usize);
        }
        Ok(total)
    }
}

impl Task for HellaswagTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn metric(&self) -> Metric {
        Metric::Accuracy
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        let mut correct = 0usize;
        for example in &self.examples {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (idx, candidate) in example.candidates.iter().enumerate() {
                let score =
                    Self::candidate_log_likelihood(model, &example.prompt, candidate, hook)?;
                if score > best.1 {
                    best = (idx, score);
                }
            }
            if best.0 == 0 {
                correct += 1;
            }
        }
        Ok(metrics::accuracy_percent(correct, self.examples.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
    use realm_llm::{config::ModelConfig, Component, NoopHook};

    #[test]
    fn clean_model_prefers_true_continuations() {
        let model = Model::new(&ModelConfig::tiny_opt(), 31).unwrap();
        let task = HellaswagTask::quick(model.language(), 31);
        let accuracy = task.evaluate(&model, &mut NoopHook).unwrap();
        // Chance level for 4 candidates is 25%.
        assert!(
            accuracy >= 62.5,
            "clean accuracy {accuracy} barely beats chance"
        );
        assert_eq!(task.len(), 8);
    }

    #[test]
    fn faults_push_accuracy_toward_chance() {
        let model = Model::new(&ModelConfig::tiny_opt(), 31).unwrap();
        let task = HellaswagTask::quick(model.language(), 33);
        let clean = task.evaluate(&model, &mut NoopHook).unwrap();
        let mut injector = ErrorInjector::new(
            FixedBitModel::bit30(0.08),
            Target::new().components([Component::O, Component::Fc2]),
            3,
        );
        let faulty = task.evaluate(&model, &mut injector).unwrap();
        assert!(faulty <= clean + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two candidates")]
    fn single_choice_is_rejected() {
        let lang = SyntheticLanguage::new(32, 0);
        let _ = HellaswagTask::new(&lang, 2, 1, 4, 3, 0);
    }
}
