//! Synthetic last-word-prediction accuracy task (the LAMBADA analogue).
//!
//! Each example is a successor chain whose final token must be predicted from the preceding
//! context; the score is the fraction of examples where the model's argmax prediction equals
//! the true final token. Like LAMBADA, the answer is fully determined by the context, so a
//! clean model scores high and datapath faults show up directly as accuracy loss.

use crate::corpus::successor_chain;
use crate::metrics::{self, Metric};
use crate::task::Task;
use rand::Rng;
use realm_llm::model::argmax_with_margin;
use realm_llm::weights::SyntheticLanguage;
use realm_llm::{GemmHook, Model, Result};
use realm_tensor::rng;

/// One last-word-prediction example: a context and the expected final token.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Example {
    context: Vec<u32>,
    answer: u32,
}

/// Last-word prediction over successor chains.
#[derive(Debug, Clone)]
pub struct LambadaTask {
    examples: Vec<Example>,
    name: String,
}

impl LambadaTask {
    /// Builds `num_examples` examples with contexts of `context_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `num_examples` is zero or `context_len < 2`.
    pub fn new(
        language: &SyntheticLanguage,
        num_examples: usize,
        context_len: usize,
        seed: u64,
    ) -> Self {
        assert!(num_examples > 0, "the task needs at least one example");
        assert!(context_len >= 2, "contexts need at least two tokens");
        let mut rng_ = rng::seeded(rng::derive_seed(seed, 0x1A3BADA));
        let examples = (0..num_examples)
            .map(|_| {
                let start = rng_.gen_range(0..language.vocab_size() as u32);
                let mut chain = vec![start];
                chain.extend(successor_chain(language, start, context_len));
                let answer = *chain.last().expect("chain is non-empty");
                chain.pop();
                Example {
                    context: chain,
                    answer,
                }
            })
            .collect();
        Self {
            examples,
            name: "lambada-synthetic".to_string(),
        }
    }

    /// A small instance for unit tests.
    pub fn quick(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 12, 8, seed)
    }

    /// A standard-sized instance for benchmark harnesses.
    pub fn standard(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 48, 12, seed)
    }

    /// Number of examples in the task.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the task has no examples (never the case for constructed tasks).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

impl Task for LambadaTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn metric(&self) -> Metric {
        Metric::Accuracy
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        let mut correct = 0usize;
        for example in &self.examples {
            let (logits, _) = model.prefill(&example.context, hook)?;
            let last = logits.row(logits.rows() - 1);
            let (prediction, _) = argmax_with_margin(last);
            if prediction == example.answer {
                correct += 1;
            }
        }
        Ok(metrics::accuracy_percent(correct, self.examples.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
    use realm_llm::{config::ModelConfig, Component, NoopHook};

    #[test]
    fn clean_accuracy_is_high() {
        let model = Model::new(&ModelConfig::tiny_opt(), 5).unwrap();
        let task = LambadaTask::quick(model.language(), 5);
        let accuracy = task.evaluate(&model, &mut NoopHook).unwrap();
        assert!(accuracy >= 60.0, "clean accuracy {accuracy} is too low");
        assert_eq!(task.len(), 12);
        assert!(!task.is_empty());
    }

    #[test]
    fn sensitive_component_faults_reduce_accuracy() {
        let model = Model::new(&ModelConfig::tiny_opt(), 5).unwrap();
        let task = LambadaTask::quick(model.language(), 7);
        let clean = task.evaluate(&model, &mut NoopHook).unwrap();
        let mut injector = ErrorInjector::new(
            FixedBitModel::bit30(0.08),
            Target::new().component(Component::O),
            23,
        );
        let faulty = task.evaluate(&model, &mut injector).unwrap();
        assert!(
            faulty <= clean,
            "accuracy must not improve under faults (clean {clean}, faulty {faulty})"
        );
        assert!(
            clean - faulty >= 10.0,
            "bit-30 flips in O should visibly reduce accuracy (clean {clean}, faulty {faulty})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn zero_examples_are_rejected() {
        let lang = SyntheticLanguage::new(32, 0);
        let _ = LambadaTask::new(&lang, 0, 8, 0);
    }
}
