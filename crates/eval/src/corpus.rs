//! Synthetic corpus generation over a model's synthetic language.
//!
//! Sequences follow the language's successor map with probability `fidelity` and otherwise
//! jump to a Zipf-distributed random token. The Zipfian tail mirrors natural-language token
//! statistics; the fidelity parameter controls how "predictable" the corpus is and therefore
//! where the clean model's perplexity lands.

use rand::Rng;
use realm_llm::weights::SyntheticLanguage;
use realm_tensor::rng::{self, SeededRng, ZipfSampler};
use serde::{Deserialize, Serialize};

/// Default fraction of transitions that follow the successor map.
pub const DEFAULT_FIDELITY: f64 = 0.75;
/// Default Zipf exponent for the noise distribution.
pub const DEFAULT_ZIPF_EXPONENT: f64 = 1.1;

/// Parameters of a synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of independent sequences.
    pub num_sequences: usize,
    /// Length of each sequence in tokens.
    pub seq_len: usize,
    /// Probability that a transition follows the successor map.
    pub fidelity: f64,
    /// Zipf exponent of the noise-token distribution.
    pub zipf_exponent: f64,
}

impl CorpusSpec {
    /// A small corpus suitable for unit tests and quick sweeps.
    pub fn quick() -> Self {
        Self {
            num_sequences: 4,
            seq_len: 12,
            fidelity: DEFAULT_FIDELITY,
            zipf_exponent: DEFAULT_ZIPF_EXPONENT,
        }
    }

    /// A larger corpus for the benchmark harnesses.
    pub fn standard() -> Self {
        Self {
            num_sequences: 16,
            seq_len: 24,
            fidelity: DEFAULT_FIDELITY,
            zipf_exponent: DEFAULT_ZIPF_EXPONENT,
        }
    }
}

/// A set of token sequences sampled from a synthetic language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    sequences: Vec<Vec<u32>>,
}

impl Corpus {
    /// Samples a corpus from `language` according to `spec`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec asks for zero sequences or sequences shorter than two tokens.
    pub fn sample(language: &SyntheticLanguage, spec: &CorpusSpec, seed: u64) -> Self {
        assert!(
            spec.num_sequences > 0,
            "a corpus needs at least one sequence"
        );
        assert!(spec.seq_len >= 2, "sequences need at least two tokens");
        let mut rng_ = rng::seeded(rng::derive_seed(seed, 0xC0_4B05));
        let zipf = ZipfSampler::new(language.vocab_size(), spec.zipf_exponent);
        let sequences = (0..spec.num_sequences)
            .map(|_| Self::sample_sequence(language, spec, &zipf, &mut rng_))
            .collect();
        Self { sequences }
    }

    fn sample_sequence(
        language: &SyntheticLanguage,
        spec: &CorpusSpec,
        zipf: &ZipfSampler,
        rng_: &mut SeededRng,
    ) -> Vec<u32> {
        use rand::distributions::Distribution;
        let mut seq = Vec::with_capacity(spec.seq_len);
        let mut current = zipf.sample(rng_) as u32;
        seq.push(current);
        for _ in 1..spec.seq_len {
            current = if rng_.gen::<f64>() < spec.fidelity {
                language.successor(current)
            } else {
                zipf.sample(rng_) as u32
            };
            seq.push(current);
        }
        seq
    }

    /// The sequences of the corpus.
    pub fn sequences(&self) -> &[Vec<u32>] {
        &self.sequences
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Returns `true` if the corpus holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of next-token prediction targets in the corpus.
    pub fn num_targets(&self) -> usize {
        self.sequences
            .iter()
            .map(|s| s.len().saturating_sub(1))
            .sum()
    }

    /// Fraction of transitions that follow the successor map (useful for sanity checks).
    pub fn measured_fidelity(&self, language: &SyntheticLanguage) -> f64 {
        let mut total = 0usize;
        let mut followed = 0usize;
        for seq in &self.sequences {
            for pair in seq.windows(2) {
                total += 1;
                if language.successor(pair[0]) == pair[1] {
                    followed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            followed as f64 / total as f64
        }
    }
}

/// Builds a deterministic successor chain of `len` tokens starting after `start`.
///
/// Used as the ground-truth continuation ("reference summary" / "reasoning chain") by the
/// generation tasks.
pub fn successor_chain(language: &SyntheticLanguage, start: u32, len: usize) -> Vec<u32> {
    let mut chain = Vec::with_capacity(len);
    let mut current = start;
    for _ in 0..len {
        current = language.successor(current);
        chain.push(current);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn language() -> SyntheticLanguage {
        SyntheticLanguage::new(64, 3)
    }

    #[test]
    fn corpus_is_deterministic_and_in_vocabulary() {
        let lang = language();
        let spec = CorpusSpec::quick();
        let a = Corpus::sample(&lang, &spec, 5);
        let b = Corpus::sample(&lang, &spec, 5);
        assert_eq!(a, b);
        assert_ne!(a, Corpus::sample(&lang, &spec, 6));
        for seq in a.sequences() {
            assert_eq!(seq.len(), spec.seq_len);
            assert!(seq.iter().all(|&t| (t as usize) < lang.vocab_size()));
        }
        assert_eq!(a.len(), spec.num_sequences);
        assert!(!a.is_empty());
    }

    #[test]
    fn measured_fidelity_tracks_spec() {
        let lang = language();
        let spec = CorpusSpec {
            num_sequences: 32,
            seq_len: 40,
            fidelity: 0.8,
            zipf_exponent: 1.1,
        };
        let corpus = Corpus::sample(&lang, &spec, 11);
        let measured = corpus.measured_fidelity(&lang);
        // Noise tokens occasionally coincide with the successor, so measured ≥ spec slightly.
        assert!(
            (measured - 0.8).abs() < 0.08,
            "measured fidelity {measured}"
        );
    }

    #[test]
    fn zero_fidelity_rarely_follows_successors() {
        let lang = language();
        let spec = CorpusSpec {
            num_sequences: 16,
            seq_len: 30,
            fidelity: 0.0,
            zipf_exponent: 1.1,
        };
        let corpus = Corpus::sample(&lang, &spec, 2);
        assert!(corpus.measured_fidelity(&lang) < 0.15);
    }

    #[test]
    fn num_targets_counts_predictable_positions() {
        let lang = language();
        let corpus = Corpus::sample(&lang, &CorpusSpec::quick(), 1);
        assert_eq!(corpus.num_targets(), 4 * 11);
    }

    #[test]
    fn successor_chain_follows_language_exactly() {
        let lang = language();
        let chain = successor_chain(&lang, 7, 5);
        assert_eq!(chain.len(), 5);
        assert_eq!(chain[0], lang.successor(7));
        for pair in chain.windows(2) {
            assert_eq!(pair[1], lang.successor(pair[0]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn empty_spec_is_rejected() {
        let spec = CorpusSpec {
            num_sequences: 0,
            ..CorpusSpec::quick()
        };
        let _ = Corpus::sample(&language(), &spec, 0);
    }
}
