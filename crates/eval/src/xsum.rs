//! Synthetic summarization task scored with ROUGE-1 (the X-Sum analogue).
//!
//! Each example provides a prompt whose ground-truth continuation is the deterministic
//! successor chain of its last token. The model generates the same number of tokens
//! autoregressively (prefill + decode, exercising the KV cache exactly like real
//! summarization decoding) and is scored with a unigram ROUGE-1 F1 against the reference
//! chain. Because generation feeds its own outputs back, this task is where prefill-stage
//! faults visibly compound — the property behind the paper's Q2.1 finding.

use crate::corpus::successor_chain;
use crate::metrics::{self, Metric};
use crate::task::Task;
use rand::Rng;
use realm_llm::weights::SyntheticLanguage;
use realm_llm::{GemmHook, Model, Result};
use realm_tensor::rng;

/// One summarization example: a prompt and the reference continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Example {
    prompt: Vec<u32>,
    reference: Vec<u32>,
}

/// Autoregressive generation scored against reference successor chains.
#[derive(Debug, Clone)]
pub struct XsumTask {
    examples: Vec<Example>,
    name: String,
}

impl XsumTask {
    /// Builds `num_examples` examples with prompts of `prompt_len` tokens and references of
    /// `summary_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        language: &SyntheticLanguage,
        num_examples: usize,
        prompt_len: usize,
        summary_len: usize,
        seed: u64,
    ) -> Self {
        assert!(num_examples > 0, "the task needs at least one example");
        assert!(prompt_len > 0 && summary_len > 0, "sizes must be non-zero");
        let mut rng_ = rng::seeded(rng::derive_seed(seed, 0x5A11));
        let examples = (0..num_examples)
            .map(|_| {
                let start = rng_.gen_range(0..language.vocab_size() as u32);
                let mut prompt = vec![start];
                prompt.extend(successor_chain(language, start, prompt_len - 1));
                let last = *prompt.last().expect("prompt is non-empty");
                let reference = successor_chain(language, last, summary_len);
                Example { prompt, reference }
            })
            .collect();
        Self {
            examples,
            name: "xsum-synthetic".to_string(),
        }
    }

    /// A small instance for unit tests.
    pub fn quick(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 6, 6, 6, seed)
    }

    /// A standard-sized instance for benchmark harnesses.
    pub fn standard(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 16, 10, 8, seed)
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the task has no examples (never the case for constructed tasks).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

impl Task for XsumTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn metric(&self) -> Metric {
        Metric::Rouge1
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        let mut total = 0.0f64;
        for example in &self.examples {
            let output = model.generate(&example.prompt, example.reference.len(), hook)?;
            total += metrics::rouge1_f1(&output.tokens, &example.reference);
        }
        Ok(total / self.examples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
    use realm_llm::{config::ModelConfig, NoopHook, Stage};

    #[test]
    fn clean_generation_scores_well() {
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let task = XsumTask::quick(model.language(), 11);
        let rouge = task.evaluate(&model, &mut NoopHook).unwrap();
        assert!(rouge > 40.0, "clean ROUGE-1 {rouge} is too low");
        assert!(rouge <= 100.0);
        assert_eq!(task.len(), 6);
    }

    #[test]
    fn prefill_faults_hurt_more_than_decode_faults() {
        // Q2.1 in miniature: identical error models targeted at the prefill stage vs the
        // decode stage; the prefill-injected run should degrade at least as much because the
        // corrupted KV cache poisons every later step.
        let model = Model::new(&ModelConfig::tiny_opt(), 11).unwrap();
        let task = XsumTask::new(model.language(), 10, 8, 8, 13);
        let clean = task.evaluate(&model, &mut NoopHook).unwrap();

        let mut prefill_injector = ErrorInjector::new(
            FixedBitModel::bit30(0.02),
            Target::new().stage(Stage::Prefill),
            41,
        );
        let prefill_score = task.evaluate(&model, &mut prefill_injector).unwrap();

        let mut decode_injector = ErrorInjector::new(
            FixedBitModel::bit30(0.02),
            Target::new().stage(Stage::Decode),
            41,
        );
        let decode_score = task.evaluate(&model, &mut decode_injector).unwrap();

        assert!(prefill_score <= clean + 1e-9);
        assert!(decode_score <= clean + 1e-9);
        assert!(
            prefill_score <= decode_score + 15.0,
            "prefill faults should not be dramatically gentler than decode faults \
             (prefill {prefill_score}, decode {decode_score})"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_summary_length_is_rejected() {
        let lang = SyntheticLanguage::new(32, 0);
        let _ = XsumTask::new(&lang, 2, 4, 0, 0);
    }
}
