//! Synthetic multi-step reasoning task scored by exact match (the GSM8K analogue).
//!
//! GSM8K answers are only correct when the whole reasoning chain lands on the right final
//! value, which makes the benchmark far more brittle under faults than token-overlap metrics.
//! The synthetic analogue keeps that property: an example counts as correct only if **every**
//! generated token of the continuation chain matches the deterministic reference chain.

use crate::corpus::successor_chain;
use crate::metrics::{self, Metric};
use crate::task::Task;
use rand::Rng;
use realm_llm::weights::SyntheticLanguage;
use realm_llm::{GemmHook, Model, Result};
use realm_tensor::rng;

/// One reasoning example: a prompt and the exact chain the model must reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Example {
    prompt: Vec<u32>,
    chain: Vec<u32>,
}

/// Exact-match accuracy over multi-step successor chains.
#[derive(Debug, Clone)]
pub struct Gsm8kTask {
    examples: Vec<Example>,
    name: String,
}

impl Gsm8kTask {
    /// Builds `num_examples` examples with prompts of `prompt_len` tokens and reasoning
    /// chains of `chain_len` steps.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(
        language: &SyntheticLanguage,
        num_examples: usize,
        prompt_len: usize,
        chain_len: usize,
        seed: u64,
    ) -> Self {
        assert!(num_examples > 0, "the task needs at least one example");
        assert!(prompt_len > 0 && chain_len > 0, "sizes must be non-zero");
        let mut rng_ = rng::seeded(rng::derive_seed(seed, 0x65_3A8));
        let examples = (0..num_examples)
            .map(|_| {
                let start = rng_.gen_range(0..language.vocab_size() as u32);
                let mut prompt = vec![start];
                prompt.extend(successor_chain(language, start, prompt_len - 1));
                let last = *prompt.last().expect("prompt is non-empty");
                let chain = successor_chain(language, last, chain_len);
                Example { prompt, chain }
            })
            .collect();
        Self {
            examples,
            name: "gsm8k-synthetic".to_string(),
        }
    }

    /// A small instance for unit tests.
    pub fn quick(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 8, 5, 4, seed)
    }

    /// A standard-sized instance for benchmark harnesses.
    pub fn standard(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, 20, 8, 6, seed)
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns `true` if the task has no examples (never the case for constructed tasks).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

impl Task for Gsm8kTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn metric(&self) -> Metric {
        Metric::Accuracy
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        let mut correct = 0usize;
        for example in &self.examples {
            let output = model.generate(&example.prompt, example.chain.len(), hook)?;
            if output.tokens == example.chain {
                correct += 1;
            }
        }
        Ok(metrics::accuracy_percent(correct, self.examples.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::BitFlipModel, injector::ErrorInjector};
    use realm_llm::{config::ModelConfig, NoopHook};

    #[test]
    fn clean_exact_match_accuracy_is_nontrivial() {
        let model = Model::new(&ModelConfig::tiny_opt(), 20).unwrap();
        let task = Gsm8kTask::quick(model.language(), 20);
        let accuracy = task.evaluate(&model, &mut NoopHook).unwrap();
        assert!(
            accuracy >= 50.0,
            "clean exact-match accuracy {accuracy} should be substantial"
        );
    }

    #[test]
    fn exact_match_is_more_brittle_than_rouge() {
        use crate::xsum::XsumTask;
        let model = Model::new(&ModelConfig::tiny_opt(), 21).unwrap();
        let gsm = Gsm8kTask::new(model.language(), 10, 6, 5, 3);
        let xsum = XsumTask::new(model.language(), 10, 6, 5, 3);

        // Injection seed re-pinned when prefill moved to per-row activation quantization
        // (chunked prefill), which relocates where a given fault draw lands.
        let mut injector = ErrorInjector::everywhere(BitFlipModel::high_bits(2e-4), 54);
        let gsm_faulty = gsm.evaluate(&model, &mut injector).unwrap();
        let mut injector = ErrorInjector::everywhere(BitFlipModel::high_bits(2e-4), 54);
        let xsum_faulty = xsum.evaluate(&model, &mut injector).unwrap();

        let gsm_clean = gsm.evaluate(&model, &mut NoopHook).unwrap();
        let xsum_clean = xsum.evaluate(&model, &mut NoopHook).unwrap();

        let gsm_rel_drop = if gsm_clean > 0.0 {
            (gsm_clean - gsm_faulty) / gsm_clean
        } else {
            0.0
        };
        let xsum_rel_drop = if xsum_clean > 0.0 {
            (xsum_clean - xsum_faulty) / xsum_clean
        } else {
            0.0
        };
        assert!(
            gsm_rel_drop + 1e-9 >= xsum_rel_drop,
            "exact match should degrade at least as fast as ROUGE \
             (gsm {gsm_rel_drop:.3} vs xsum {xsum_rel_drop:.3})"
        );
    }

    #[test]
    fn task_is_deterministic() {
        let model = Model::new(&ModelConfig::tiny_opt(), 21).unwrap();
        let task = Gsm8kTask::quick(model.language(), 4);
        let a = task.evaluate(&model, &mut NoopHook).unwrap();
        let b = task.evaluate(&model, &mut NoopHook).unwrap();
        assert_eq!(a, b);
        assert_eq!(task.len(), 8);
    }
}
