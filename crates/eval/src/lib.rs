//! # realm-eval
//!
//! Synthetic evaluation-task suite for fault-injection studies on the synthetic LLMs of
//! `realm-llm`.
//!
//! The paper evaluates error impact on LAMBADA (accuracy), WikiText-2 (perplexity), X-Sum
//! (ROUGE-1), GSM8K (accuracy) and HellaSwag (accuracy). Those datasets need pretrained
//! models to be meaningful; this reproduction instead defines one synthetic task per metric
//! family over the model's own [`realm_llm::weights::SyntheticLanguage`]:
//!
//! | Paper benchmark | Here | Metric |
//! |---|---|---|
//! | WikiText-2 language modelling | [`wikitext::WikitextTask`] — perplexity over corpora sampled from the synthetic language | perplexity (↓) |
//! | LAMBADA last-word prediction | [`lambada::LambadaTask`] — predict the final token of a successor chain | accuracy (↑) |
//! | X-Sum summarization | [`xsum::XsumTask`] — generate the continuation chain, scored with a ROUGE-1 analogue | ROUGE-1 (↑) |
//! | GSM8K arithmetic reasoning | [`gsm8k::Gsm8kTask`] — exact-match of a multi-step chain (all steps must be right) | accuracy (↑) |
//! | HellaSwag completion choice | [`hellaswag::HellaswagTask`] — pick the true continuation among distractors by likelihood | accuracy (↑) |
//!
//! Every task consumes the same interface the real benchmarks would (prefill logits,
//! autoregressive generation) and is evaluated through a [`realm_llm::GemmHook`], so the
//! identical task instance measures clean and fault-injected performance.
//!
//! # Example
//!
//! ```
//! use realm_eval::{task::Task, wikitext::WikitextTask};
//! use realm_llm::{config::ModelConfig, model::Model, NoopHook};
//!
//! # fn main() -> Result<(), realm_llm::LlmError> {
//! let model = Model::new(&ModelConfig::tiny_opt(), 7)?;
//! let task = WikitextTask::quick(model.language(), 7);
//! let clean_perplexity = task.evaluate(&model, &mut NoopHook)?;
//! assert!(clean_perplexity > 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod gsm8k;
pub mod hellaswag;
pub mod lambada;
pub mod metrics;
pub mod task;
pub mod wikitext;
pub mod xsum;

pub use metrics::Metric;
pub use task::{Task, TaskResult};
