//! The task abstraction shared by all synthetic benchmarks.

use crate::metrics::Metric;
use realm_llm::{GemmHook, Model, Result};
use serde::{Deserialize, Serialize};

/// A benchmark task that evaluates a model (optionally under fault injection) to one number.
pub trait Task {
    /// Human-readable task name used in reports (e.g. `"wikitext-synthetic"`).
    fn name(&self) -> &str;

    /// The metric family the score belongs to.
    fn metric(&self) -> Metric;

    /// Evaluates the model through the given GEMM hook and returns the metric value.
    ///
    /// # Errors
    ///
    /// Propagates model-inference errors (invalid tokens, context overflow, shape bugs).
    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64>;
}

impl<T: Task + ?Sized> Task for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn metric(&self) -> Metric {
        (**self).metric()
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        (**self).evaluate(model, hook)
    }
}

impl<T: Task + ?Sized> Task for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn metric(&self) -> Metric {
        (**self).metric()
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        (**self).evaluate(model, hook)
    }
}

/// A labelled task outcome, convenient for serialising experiment reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    /// Task name.
    pub task: String,
    /// Metric family of the value.
    pub metric: Metric,
    /// Measured value.
    pub value: f64,
}

impl TaskResult {
    /// Evaluates `task` on `model` through `hook` and wraps the outcome.
    ///
    /// # Errors
    ///
    /// Propagates the task's evaluation error.
    pub fn measure(task: &dyn Task, model: &Model, hook: &mut dyn GemmHook) -> Result<Self> {
        Ok(Self {
            task: task.name().to_string(),
            metric: task.metric(),
            value: task.evaluate(model, hook)?,
        })
    }

    /// Degradation of `faulty` relative to this (clean) result, larger-is-worse.
    pub fn degradation_to(&self, faulty: &TaskResult) -> f64 {
        self.metric.degradation(self.value, faulty.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_llm::{config::ModelConfig, NoopHook};

    struct ConstantTask(f64);
    impl Task for ConstantTask {
        fn name(&self) -> &str {
            "constant"
        }
        fn metric(&self) -> Metric {
            Metric::Accuracy
        }
        fn evaluate(&self, _model: &Model, _hook: &mut dyn GemmHook) -> Result<f64> {
            Ok(self.0)
        }
    }

    #[test]
    fn task_result_measures_and_compares() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let clean = TaskResult::measure(&ConstantTask(80.0), &model, &mut NoopHook).unwrap();
        let faulty = TaskResult::measure(&ConstantTask(62.0), &model, &mut NoopHook).unwrap();
        assert_eq!(clean.task, "constant");
        assert_eq!(clean.metric, Metric::Accuracy);
        assert!((clean.degradation_to(&faulty) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn references_and_boxes_are_tasks() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let task = ConstantTask(10.0);
        let by_ref: &dyn Task = &task;
        assert_eq!(by_ref.evaluate(&model, &mut NoopHook).unwrap(), 10.0);
        let boxed: Box<dyn Task> = Box::new(ConstantTask(20.0));
        assert_eq!(boxed.name(), "constant");
        assert_eq!(boxed.evaluate(&model, &mut NoopHook).unwrap(), 20.0);
    }
}
