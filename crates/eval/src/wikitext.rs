//! Synthetic language-modelling perplexity task (the WikiText-2 analogue).

use crate::corpus::{Corpus, CorpusSpec};
use crate::metrics::{self, Metric};
use crate::task::Task;
use realm_llm::weights::SyntheticLanguage;
use realm_llm::{GemmHook, Model, Result};

/// Perplexity over corpora sampled from the model's synthetic language.
#[derive(Debug, Clone)]
pub struct WikitextTask {
    corpus: Corpus,
    name: String,
}

impl WikitextTask {
    /// Builds the task from an explicit corpus specification.
    pub fn new(language: &SyntheticLanguage, spec: &CorpusSpec, seed: u64) -> Self {
        Self {
            corpus: Corpus::sample(language, spec, seed),
            name: "wikitext-synthetic".to_string(),
        }
    }

    /// A small instance for unit tests and doc examples.
    pub fn quick(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, &CorpusSpec::quick(), seed)
    }

    /// A standard-sized instance for benchmark harnesses.
    pub fn standard(language: &SyntheticLanguage, seed: u64) -> Self {
        Self::new(language, &CorpusSpec::standard(), seed)
    }

    /// The evaluation corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

impl Task for WikitextTask {
    fn name(&self) -> &str {
        &self.name
    }

    fn metric(&self) -> Metric {
        Metric::Perplexity
    }

    fn evaluate(&self, model: &Model, hook: &mut dyn GemmHook) -> Result<f64> {
        let mut total_nll = 0.0f64;
        let mut targets = 0usize;
        for seq in self.corpus.sequences() {
            let (logits, _) = model.prefill(seq, hook)?;
            for i in 0..seq.len() - 1 {
                let lp = metrics::log_prob(logits.row(i), seq[i + 1] as usize);
                total_nll -= lp;
                targets += 1;
            }
        }
        Ok(metrics::perplexity_from_nll(total_nll, targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_inject::{error_model::FixedBitModel, injector::ErrorInjector, targeting::Target};
    use realm_llm::{config::ModelConfig, Component, NoopHook};

    #[test]
    fn clean_perplexity_is_far_below_uniform() {
        let config = ModelConfig::tiny_opt();
        let model = Model::new(&config, 3).unwrap();
        let task = WikitextTask::quick(model.language(), 3);
        let ppl = task.evaluate(&model, &mut NoopHook).unwrap();
        let uniform = config.vocab_size as f64;
        assert!(ppl > 1.0, "perplexity {ppl} must exceed 1");
        assert!(
            ppl < uniform * 0.6,
            "clean perplexity {ppl} should beat the uniform baseline {uniform}"
        );
    }

    #[test]
    fn perplexity_is_deterministic() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 9);
        let a = task.evaluate(&model, &mut NoopHook).unwrap();
        let b = task.evaluate(&model, &mut NoopHook).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_fault_injection_degrades_perplexity() {
        let model = Model::new(&ModelConfig::tiny_opt(), 3).unwrap();
        let task = WikitextTask::quick(model.language(), 5);
        let clean = task.evaluate(&model, &mut NoopHook).unwrap();
        // Hammer the sensitive output projection with guaranteed bit-30 flips.
        let mut injector = ErrorInjector::new(
            FixedBitModel::bit30(0.05),
            Target::new().component(Component::O),
            17,
        );
        let faulty = task.evaluate(&model, &mut injector).unwrap();
        assert!(
            faulty > clean * 1.5,
            "perplexity should degrade: clean {clean}, faulty {faulty}"
        );
    }
}
