//! Task metrics: perplexity, accuracy and a ROUGE-1 analogue.

use serde::{Deserialize, Serialize};

/// The metric family a task reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Language-modelling perplexity — lower is better.
    Perplexity,
    /// Classification / exact-match accuracy in percent — higher is better.
    Accuracy,
    /// ROUGE-1 F1 score in percent — higher is better.
    Rouge1,
}

impl Metric {
    /// Whether larger values of the metric indicate better model quality.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, Metric::Perplexity)
    }

    /// Degradation of `faulty` relative to `clean`, expressed so that larger is always worse:
    /// perplexity increase for perplexity, score drop for accuracy-like metrics.
    pub fn degradation(self, clean: f64, faulty: f64) -> f64 {
        if self.higher_is_better() {
            clean - faulty
        } else {
            faulty - clean
        }
    }

    /// Unit suffix used when printing values of this metric.
    pub fn unit(self) -> &'static str {
        match self {
            Metric::Perplexity => "",
            Metric::Accuracy | Metric::Rouge1 => "%",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Perplexity => f.write_str("perplexity"),
            Metric::Accuracy => f.write_str("accuracy"),
            Metric::Rouge1 => f.write_str("ROUGE-1"),
        }
    }
}

/// Numerically stable log-softmax probability of `target` under `logits`.
pub fn log_prob(logits: &[f32], target: usize) -> f64 {
    debug_assert!(target < logits.len(), "target index out of range");
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b)) as f64;
    let log_sum: f64 = logits
        .iter()
        .map(|&v| ((v as f64) - max).exp())
        .sum::<f64>()
        .ln()
        + max;
    logits[target] as f64 - log_sum
}

/// Perplexity from a sum of negative log-likelihoods over `count` targets.
///
/// Returns infinity for zero targets so degenerate evaluations are visible rather than
/// silently reported as perfect.
pub fn perplexity_from_nll(total_nll: f64, count: usize) -> f64 {
    if count == 0 {
        return f64::INFINITY;
    }
    (total_nll / count as f64).exp()
}

/// Accuracy in percent from a correct/total count pair.
pub fn accuracy_percent(correct: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * correct as f64 / total as f64
    }
}

/// ROUGE-1 F1 (unigram overlap) between a candidate and a reference token sequence, in
/// percent.
///
/// This is the token-level analogue of the ROUGE-1 score the paper uses for X-Sum: unigram
/// precision/recall with clipped counts, combined into an F1 score.
pub fn rouge1_f1(candidate: &[u32], reference: &[u32]) -> f64 {
    if candidate.is_empty() || reference.is_empty() {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut ref_counts: HashMap<u32, usize> = HashMap::new();
    for &t in reference {
        *ref_counts.entry(t).or_insert(0) += 1;
    }
    let mut cand_counts: HashMap<u32, usize> = HashMap::new();
    for &t in candidate {
        *cand_counts.entry(t).or_insert(0) += 1;
    }
    let overlap: usize = cand_counts
        .iter()
        .map(|(t, &c)| c.min(ref_counts.get(t).copied().unwrap_or(0)))
        .sum();
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / candidate.len() as f64;
    let recall = overlap as f64 / reference.len() as f64;
    100.0 * 2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_direction_and_degradation() {
        assert!(!Metric::Perplexity.higher_is_better());
        assert!(Metric::Accuracy.higher_is_better());
        assert!(Metric::Rouge1.higher_is_better());
        assert_eq!(Metric::Perplexity.degradation(15.0, 33.5), 18.5);
        assert!((Metric::Accuracy.degradation(70.0, 62.4) - 7.6).abs() < 1e-9);
        assert_eq!(Metric::Accuracy.unit(), "%");
        assert_eq!(Metric::Perplexity.to_string(), "perplexity");
    }

    #[test]
    fn log_prob_of_uniform_logits_is_log_of_count() {
        let logits = vec![0.0f32; 8];
        let lp = log_prob(&logits, 3);
        assert!((lp - (-(8f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_prob_prefers_largest_logit() {
        let logits = vec![0.0, 5.0, -2.0];
        assert!(log_prob(&logits, 1) > log_prob(&logits, 0));
        assert!(log_prob(&logits, 0) > log_prob(&logits, 2));
        assert!(log_prob(&logits, 1) < 0.0);
    }

    #[test]
    fn log_prob_is_stable_for_huge_logits() {
        let logits = vec![1e30f32, 0.0, -1e30];
        let lp = log_prob(&logits, 0);
        assert!(lp.is_finite() && lp <= 0.0);
    }

    #[test]
    fn perplexity_of_perfect_predictions_is_one() {
        assert_eq!(perplexity_from_nll(0.0, 10), 1.0);
        assert!(perplexity_from_nll(10.0, 10) > 1.0);
        assert!(perplexity_from_nll(1.0, 0).is_infinite());
    }

    #[test]
    fn accuracy_percent_handles_edge_cases() {
        assert_eq!(accuracy_percent(3, 4), 75.0);
        assert_eq!(accuracy_percent(0, 0), 0.0);
        assert_eq!(accuracy_percent(0, 5), 0.0);
    }

    #[test]
    fn rouge1_of_identical_sequences_is_100() {
        let s = vec![1, 2, 3, 4];
        assert!((rouge1_f1(&s, &s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rouge1_of_disjoint_sequences_is_0() {
        assert_eq!(rouge1_f1(&[1, 2, 3], &[4, 5, 6]), 0.0);
        assert_eq!(rouge1_f1(&[], &[1]), 0.0);
    }

    #[test]
    fn rouge1_partial_overlap_is_between() {
        let score = rouge1_f1(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert!(score > 0.0 && score < 100.0);
        assert!((score - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rouge1_clips_repeated_tokens() {
        // Candidate repeats a reference token more often than it appears: clipping keeps the
        // overlap at the reference count.
        let score = rouge1_f1(&[7, 7, 7, 7], &[7, 1, 2, 3]);
        assert!((score - 25.0).abs() < 1e-9);
    }
}
