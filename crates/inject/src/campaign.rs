//! Monte-Carlo campaign runner for error-injection experiments.
//!
//! The paper's characterization is *statistical*: every data point in Fig. 4 is the average
//! metric over many independent fault-injection trials. [`run_trials`] executes those trials
//! in parallel (they are completely independent) with deterministic per-trial seeds, and
//! [`TrialSummary`] aggregates them.

use rayon::prelude::*;
use realm_tensor::rng;
use serde::{Deserialize, Serialize};

/// Aggregate statistics over the metric values produced by a set of trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSummary {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean metric value.
    pub mean: f64,
    /// Sample standard deviation (0.0 for fewer than two trials).
    pub std: f64,
    /// Minimum metric value.
    pub min: f64,
    /// Maximum metric value.
    pub max: f64,
    /// Median metric value.
    pub median: f64,
}

impl TrialSummary {
    /// Summarises a slice of metric values.
    ///
    /// Returns a zeroed summary for an empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                trials: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Self {
            trials: n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.std / (self.trials as f64).sqrt()
        }
    }
}

/// Runs `trials` independent trials in parallel and returns each trial's metric value.
///
/// Every trial receives a distinct, deterministic seed derived from `base_seed`, so the whole
/// campaign is reproducible regardless of thread scheduling. The trial function must be
/// `Sync` because trials run concurrently.
///
/// # Example
///
/// ```
/// use realm_inject::campaign::{run_trials, TrialSummary};
///
/// let values = run_trials(8, 42, |seed| (seed % 7) as f64);
/// assert_eq!(values.len(), 8);
/// let summary = TrialSummary::from_values(&values);
/// assert!(summary.mean >= 0.0);
/// ```
pub fn run_trials<F>(trials: usize, base_seed: u64, trial: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    run_trials_with(trials, base_seed, trial)
}

/// Runs `trials` independent trials in parallel, returning each trial's full result.
///
/// The generic sibling of [`run_trials`] for campaigns whose per-trial outcome is richer
/// than a single metric value — e.g. batched trials that report per-sequence detection and
/// recovery attribution. Seeding is identical to [`run_trials`], so a scalar campaign and a
/// structured campaign with the same base seed observe the same fault streams.
pub fn run_trials_with<T, F>(trials: usize, base_seed: u64, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|i| trial(rng::derive_seed(base_seed, i as u64)))
        .collect()
}

/// Runs trials and aggregates them in one call.
pub fn run_and_summarize<F>(trials: usize, base_seed: u64, trial: F) -> TrialSummary
where
    F: Fn(u64) -> f64 + Sync,
{
    TrialSummary::from_values(&run_trials(trials, base_seed, trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn trials_receive_distinct_deterministic_seeds() {
        let a = run_trials(16, 7, |seed| seed as f64);
        let b = run_trials(16, 7, |seed| seed as f64);
        assert_eq!(a, b, "same base seed gives the same trial seeds");
        let mut unique = a.clone();
        unique.sort_by(|x, y| x.partial_cmp(y).unwrap());
        unique.dedup();
        assert_eq!(unique.len(), 16, "every trial sees a different seed");
        let c = run_trials(16, 8, |seed| seed as f64);
        assert_ne!(a, c);
    }

    #[test]
    fn all_trials_execute() {
        let counter = AtomicUsize::new(0);
        let _ = run_trials(32, 0, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
            1.0
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn summary_of_known_values() {
        let s = TrialSummary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.trials, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.standard_error() > 0.0);
    }

    #[test]
    fn summary_of_single_and_empty_inputs() {
        let s = TrialSummary::from_values(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        let e = TrialSummary::from_values(&[]);
        assert_eq!(e.trials, 0);
        assert_eq!(e.standard_error(), 0.0);
    }

    #[test]
    fn run_and_summarize_matches_manual_composition() {
        let summary = run_and_summarize(10, 3, |seed| (seed % 100) as f64);
        let manual = TrialSummary::from_values(&run_trials(10, 3, |seed| (seed % 100) as f64));
        assert_eq!(summary, manual);
    }
}
