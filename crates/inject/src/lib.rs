//! # realm-inject
//!
//! Statistical error-injection framework for quantized LLM inference (Sec. III of the paper).
//!
//! The paper models transient hardware faults (timing errors under voltage underscaling,
//! aging, variation) as **random bit flips in the INT32 accumulation results** of GEMMs. This
//! crate provides:
//!
//! * [`error_model`] — the fault abstractions: uniform/high-bit random bit flips controlled by
//!   a bit-error rate (BER), single-bit-position flips (used by the paper's Q1.1–Q1.3
//!   protocols which target the 30th bit), and the controlled magnitude/frequency model of
//!   Sec. III-B where `MSD = freq × mag`.
//! * [`targeting`] — filters selecting which GEMMs receive errors (network component, layer,
//!   inference stage), matching the paper's per-component / per-layer / per-stage studies.
//! * [`injector`] — a [`realm_llm::GemmHook`] that applies an error model to targeted GEMMs
//!   and records statistics about what was injected.
//! * [`voltage`] — the operating-voltage ↔ BER relationship (shape of Fig. 1(a)).
//! * [`campaign`] — embarrassingly parallel Monte-Carlo trial runner used by every
//!   characterization sweep.
//!
//! # Example
//!
//! ```
//! use realm_inject::{error_model::BitFlipModel, injector::ErrorInjector, targeting::Target};
//! use realm_llm::{config::ModelConfig, model::Model, Component};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Model::new(&ModelConfig::tiny_opt(), 1)?;
//! // Flip bits at a BER of 1e-4, but only in the attention output projection of layer 0.
//! let target = Target::new().components([Component::O]).layers([0]);
//! let mut injector = ErrorInjector::new(BitFlipModel::high_bits(1e-4), target, 99);
//! let _ = model.prefill(&[1, 2, 3, 4], &mut injector)?;
//! println!("injected {} bit flips", injector.stats().errors_injected);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod error_model;
pub mod injector;
pub mod targeting;
pub mod voltage;

pub use error_model::{BitFlipModel, ErrorModel, FixedBitModel, MagFreqModel};
pub use injector::{BurstSchedule, ErrorInjector, InjectionStats};
pub use targeting::Target;
pub use voltage::VoltageBerCurve;
