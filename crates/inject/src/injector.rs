//! The error injector: a [`GemmHook`] that applies a fault model to targeted GEMMs.

use crate::error_model::ErrorModel;
use crate::targeting::Target;
use realm_llm::{Component, GemmContext, GemmHook, GemmOrigin, Stage};
use realm_tensor::rng::{self, SeededRng};
use realm_tensor::{ChecksummedGemm, MatI32, MatI8, RowPartition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics accumulated by an [`ErrorInjector`] over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionStats {
    /// Number of GEMM invocations observed (targeted or not).
    pub gemms_observed: u64,
    /// Number of GEMM invocations that matched the target.
    pub gemms_targeted: u64,
    /// Number of GEMM invocations in which at least one error was injected.
    pub gemms_corrupted: u64,
    /// Total number of injected errors (bit flips or magnitude additions).
    pub errors_injected: u64,
    /// Injected-error count per network component.
    pub per_component: BTreeMap<Component, u64>,
    /// Injected-error count per inference stage.
    pub per_stage: BTreeMap<Stage, u64>,
    /// Injected-error count per batch sequence, where attribution is possible: GEMMs that
    /// belong wholly to one sequence, and batch-stacked GEMMs injected under a
    /// sequence-filtered target (the injector then corrupts only that sequence's rows).
    /// Unrestricted injection into a batch-stacked GEMM is not attributable a priori and is
    /// left to the protector's checksum-based attribution.
    pub per_sequence: BTreeMap<usize, u64>,
    /// Number of whole-shard fault scenarios armed ([`ErrorInjector::arm_shard_faults`]).
    pub shard_faults_armed: u64,
    /// Armed whole-shard fault count per tensor-parallel shard index.
    pub per_shard: BTreeMap<usize, u64>,
}

impl InjectionStats {
    /// Fraction of targeted GEMMs that actually received at least one error.
    pub fn corruption_rate(&self) -> f64 {
        if self.gemms_targeted == 0 {
            0.0
        } else {
            self.gemms_corrupted as f64 / self.gemms_targeted as f64
        }
    }
}

/// A time-correlated burst schedule in engine steps: `burst_steps` of injection, then
/// `gap_steps` of silence, repeating. Phase 0 of the cycle is the burst, so an armed
/// schedule starts injecting immediately.
///
/// Real voltage-noise and aging faults cluster in time rather than arriving i.i.d.; the
/// schedule models that clustering at engine-step granularity, which is the clock an
/// adaptive protection controller reacts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSchedule {
    /// Consecutive engine steps during which injection is active.
    pub burst_steps: u64,
    /// Silent engine steps between bursts.
    pub gap_steps: u64,
}

impl BurstSchedule {
    /// Whether `step` falls inside a burst window of the repeating cycle.
    pub fn active(&self, step: u64) -> bool {
        let period = self.burst_steps + self.gap_steps;
        if period == 0 {
            return false;
        }
        step % period < self.burst_steps
    }
}

/// A GEMM hook that corrupts accumulator results according to an [`ErrorModel`].
///
/// The injector owns a deterministic RNG: two injectors constructed with the same model,
/// target and seed inject exactly the same faults, which keeps every experiment reproducible.
#[derive(Debug, Clone)]
pub struct ErrorInjector<M> {
    model: M,
    target: Target,
    rng: SeededRng,
    stats: InjectionStats,
    enabled: bool,
    partition: Option<RowPartition>,
    burst: Option<BurstSchedule>,
    /// Whether the current engine step falls inside a burst window. `true` when no burst
    /// schedule is armed (steady injection) and re-evaluated on every `on_step_begin`.
    in_burst: bool,
}

impl<M: ErrorModel> ErrorInjector<M> {
    /// Creates an injector applying `model` to GEMMs selected by `target`.
    pub fn new(model: M, target: Target, seed: u64) -> Self {
        Self {
            model,
            target,
            rng: rng::seeded(rng::derive_seed(seed, 0x1_11EC7)),
            stats: InjectionStats::default(),
            enabled: true,
            partition: None,
            burst: None,
            in_burst: true,
        }
    }

    /// Creates an injector that targets every GEMM in the model.
    pub fn everywhere(model: M, seed: u64) -> Self {
        Self::new(model, Target::everything(), seed)
    }

    /// The fault model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The targeting filter in use.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &InjectionStats {
        &self.stats
    }

    /// Resets the accumulated statistics (the RNG stream is left untouched).
    pub fn reset_stats(&mut self) {
        self.stats = InjectionStats::default();
    }

    /// Temporarily enables or disables injection without tearing down the hook chain.
    ///
    /// Used by recovery policies that re-execute a GEMM at nominal voltage: the re-execution
    /// must be fault-free.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether injection is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Arms a time-correlated burst schedule: inject for `burst_steps` engine steps, stay
    /// silent for `gap_steps`, repeat. The cycle starts in-burst at step 0 and advances
    /// on the serving engine's [`GemmHook::on_step_begin`] clock; outside a serving loop
    /// (where that clock never ticks) the injector stays in the initial burst window, so
    /// standalone runs behave like an unscheduled injector.
    ///
    /// Returns the injector for builder-style chaining.
    pub fn with_burst(mut self, burst_steps: u64, gap_steps: u64) -> Self {
        self.set_burst(Some(BurstSchedule {
            burst_steps,
            gap_steps,
        }));
        self
    }

    /// Installs (`Some`) or removes (`None`) the burst schedule. Removing it restores
    /// steady injection.
    pub fn set_burst(&mut self, schedule: Option<BurstSchedule>) {
        self.burst = schedule;
        self.in_burst = match schedule {
            Some(s) => s.active(0),
            None => true,
        };
    }

    /// The armed burst schedule, if any.
    pub fn burst(&self) -> Option<BurstSchedule> {
        self.burst
    }

    /// Whether the current engine step is inside a burst window (always `true` without a
    /// schedule).
    pub fn burst_active(&self) -> bool {
        self.in_burst
    }

    /// Arms `fault` for the next `steps` sharded dispatches on every tensor-parallel
    /// shard of `group` selected by the target's shard filter (every shard when the
    /// filter is unset). Returns the number of shards armed.
    ///
    /// Whole-shard faults live below the GEMM hook interface — the rank group applies
    /// them at dispatch time and the sharded layer detects and recovers from them
    /// (`realm_tensor::tp`) — so this is a side channel next to the per-GEMM `corrupt`
    /// path, with its own per-shard accounting in [`InjectionStats`]. A disabled
    /// injector arms nothing.
    pub fn arm_shard_faults(
        &mut self,
        group: &realm_tensor::TpGroup,
        fault: realm_tensor::ShardFault,
        steps: usize,
    ) -> usize {
        if !self.enabled || steps == 0 {
            return 0;
        }
        let mut armed = 0;
        for shard in 0..group.degree() {
            if self
                .target
                .shard_filter()
                .is_none_or(|filter| filter.contains(&shard))
            {
                group.inject_shard_fault(shard, fault, steps);
                self.stats.shard_faults_armed += 1;
                *self.stats.per_shard.entry(shard).or_insert(0) += 1;
                armed += 1;
            }
        }
        armed
    }
}

impl<M: ErrorModel> ErrorInjector<M> {
    /// Books the statistics for `injected` errors from one targeted GEMM, attributing them
    /// to `sequence` when the originating sequence is known.
    fn book(&mut self, ctx: &GemmContext, injected: usize, sequence: Option<usize>) {
        if injected == 0 {
            return;
        }
        self.stats.errors_injected += injected as u64;
        *self.stats.per_component.entry(ctx.component).or_insert(0) += injected as u64;
        *self.stats.per_stage.entry(ctx.stage).or_insert(0) += injected as u64;
        if let Some(seq) = sequence {
            *self.stats.per_sequence.entry(seq).or_insert(0) += injected as u64;
        }
    }

    /// Applies the fault model to a targeted accumulator and books the statistics.
    /// Returns the number of injected errors.
    fn corrupt_targeted(&mut self, ctx: &GemmContext, acc: &mut MatI32) -> usize {
        self.stats.gemms_targeted += 1;
        let injected = self.corrupt_rows(ctx, acc);
        if injected > 0 {
            self.stats.gemms_corrupted += 1;
        }
        injected
    }

    /// Applies the fault model to the (possibly sequence-restricted) rows of a targeted
    /// accumulator. Returns the number of injected errors.
    fn corrupt_rows(&mut self, ctx: &GemmContext, acc: &mut MatI32) -> usize {
        match (ctx.origin, self.target.sequence_filter()) {
            // A batch-stacked GEMM under a sequence-filtered target: corrupt only the rows
            // of the targeted sequences (known from the announced row partition), so a
            // batched campaign injects into exactly the sequences a per-sequence campaign
            // would have.
            (GemmOrigin::BatchedRows, Some(filter)) => {
                let filter: Vec<usize> = filter.iter().copied().collect();
                let Some(parts) = self.partition.clone() else {
                    return 0; // No partition announced: nothing safely attributable.
                };
                // A stale partition (e.g. a hand-driven batched GEMM after a differently
                // shaped batch) would map rows to the wrong sequences; refuse rather than
                // misattribute.
                if parts.total_rows() != acc.rows() {
                    return 0;
                }
                let mut total = 0usize;
                for seq in filter {
                    if seq >= parts.num_groups() {
                        continue;
                    }
                    let range = parts.range(seq);
                    if range.is_empty() {
                        continue;
                    }
                    let mut sub = acc
                        .rows_slice(range.start, range.len())
                        .expect("partition rows verified against the accumulator");
                    let injected = self.model.corrupt(&mut self.rng, &mut sub);
                    if injected > 0 {
                        for (i, r) in range.enumerate() {
                            acc.row_mut(r).copy_from_slice(sub.row(i));
                        }
                        self.book(ctx, injected, Some(seq));
                        total += injected;
                    }
                }
                total
            }
            _ => {
                let injected = self.model.corrupt(&mut self.rng, acc);
                let sequence = match ctx.origin {
                    GemmOrigin::Sequence(seq) => Some(seq),
                    GemmOrigin::BatchedRows => None,
                };
                self.book(ctx, injected, sequence);
                injected
            }
        }
    }
}

impl<M: ErrorModel> GemmHook for ErrorInjector<M> {
    fn on_gemm(&mut self, ctx: &GemmContext, _w: &MatI8, _x: &MatI8, acc: &mut MatI32) {
        self.stats.gemms_observed += 1;
        if !self.enabled || !self.in_burst || !self.target.matches(ctx) {
            return;
        }
        self.corrupt_targeted(ctx, acc);
    }

    fn on_gemm_checksummed(
        &mut self,
        ctx: &GemmContext,
        _w: &MatI8,
        _x: &MatI8,
        result: &mut ChecksummedGemm,
    ) {
        self.stats.gemms_observed += 1;
        // Untargeted (and fault-free) GEMMs must not touch the accumulator at all: taking
        // `acc_mut` would mark the fused observed checksum stale and force a downstream
        // protector into a full recompute — at low BER that is almost every GEMM. The
        // same applies to steps between bursts.
        if !self.enabled || !self.in_burst || !self.target.matches(ctx) {
            return;
        }
        if self.corrupt_targeted(ctx, result.acc_mut()) == 0 {
            result.assume_observed_fresh();
        }
    }

    fn wants_checksums(&self) -> bool {
        // The injector only mutates the accumulator; it never reads the checksums. A
        // downstream protector in the same chain is what opts the chain in.
        false
    }

    fn on_batch_begin(&mut self, partition: &RowPartition) {
        self.partition = Some(partition.clone());
    }

    fn on_step_begin(&mut self, step: u64) {
        if let Some(schedule) = self.burst {
            self.in_burst = schedule.active(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::{BitFlipModel, FixedBitModel, MagFreqModel};
    use realm_llm::{config::ModelConfig, model::Model};

    #[test]
    fn injector_only_touches_targeted_component() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let target = Target::new().component(Component::O);
        let mut injector = ErrorInjector::new(FixedBitModel::bit30(1.0), target, 3);
        model.prefill(&[1, 2, 3, 4], &mut injector).unwrap();
        let stats = injector.stats();
        assert!(stats.errors_injected > 0);
        assert!(stats.per_component.contains_key(&Component::O));
        assert_eq!(stats.per_component.len(), 1);
        assert_eq!(
            stats.gemms_targeted,
            ModelConfig::tiny_opt().num_layers as u64,
            "one O GEMM per layer during prefill"
        );
    }

    #[test]
    fn injector_counts_observed_vs_targeted() {
        let model = Model::new(&ModelConfig::tiny_llama(), 1).unwrap();
        let target = Target::new().stage(Stage::Decode);
        let mut injector = ErrorInjector::new(BitFlipModel::uniform(0.5), target, 3);
        let (_, mut cache) = model.prefill(&[1, 2, 3], &mut injector).unwrap();
        assert_eq!(
            injector.stats().gemms_targeted,
            0,
            "prefill GEMMs are not targeted"
        );
        assert!(injector.stats().gemms_observed > 0);
        model.decode_step(4, &mut cache, &mut injector).unwrap();
        assert!(injector.stats().gemms_targeted > 0);
        assert!(injector.stats().errors_injected > 0);
    }

    #[test]
    fn disabled_injector_is_a_noop() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(1.0), 5);
        injector.set_enabled(false);
        assert!(!injector.is_enabled());
        let (faulty_logits, _) = model.prefill(&[1, 2, 3], &mut injector).unwrap();
        let (clean_logits, _) = model.prefill(&[1, 2, 3], &mut realm_llm::NoopHook).unwrap();
        assert_eq!(faulty_logits, clean_logits);
        assert_eq!(injector.stats().errors_injected, 0);
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let run = |seed| {
            let mut injector = ErrorInjector::everywhere(BitFlipModel::high_bits(1e-3), seed);
            let (logits, _) = model.prefill(&[5, 6, 7, 8], &mut injector).unwrap();
            (logits, injector.stats().errors_injected)
        };
        let (la, ca) = run(11);
        let (lb, cb) = run(11);
        assert_eq!(la, lb);
        assert_eq!(ca, cb);
        let (lc, _) = run(12);
        assert_ne!(la, lc);
    }

    #[test]
    fn corruption_rate_reflects_magfreq_model() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let target = Target::new().component(Component::Fc1);
        let mut injector = ErrorInjector::new(MagFreqModel::new(1 << 20, 4), target, 7);
        model.prefill(&[1, 2, 3, 4, 5], &mut injector).unwrap();
        let stats = injector.stats();
        // The controlled model corrupts every targeted GEMM.
        assert_eq!(stats.gemms_corrupted, stats.gemms_targeted);
        assert!((stats.corruption_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(
            stats.errors_injected,
            stats.gemms_targeted * 4,
            "4 errors per targeted GEMM"
        );
    }

    #[test]
    fn reset_stats_clears_counters() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(1.0), 5);
        model.prefill(&[1, 2], &mut injector).unwrap();
        assert!(injector.stats().errors_injected > 0);
        injector.reset_stats();
        assert_eq!(injector.stats().errors_injected, 0);
        assert_eq!(injector.stats().gemms_observed, 0);
    }

    #[test]
    fn empty_stats_have_zero_corruption_rate() {
        assert_eq!(InjectionStats::default().corruption_rate(), 0.0);
    }

    #[test]
    fn burst_schedule_cycles_burst_then_gap() {
        let schedule = BurstSchedule {
            burst_steps: 2,
            gap_steps: 3,
        };
        let active: Vec<bool> = (0..10).map(|s| schedule.active(s)).collect();
        assert_eq!(
            active,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        // A degenerate all-gap schedule never fires; an all-burst one always does.
        assert!(!BurstSchedule {
            burst_steps: 0,
            gap_steps: 4
        }
        .active(0));
        assert!(BurstSchedule {
            burst_steps: 1,
            gap_steps: 0
        }
        .active(7));
    }

    #[test]
    fn burst_mode_injects_only_inside_burst_windows() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let mut injector = ErrorInjector::everywhere(FixedBitModel::bit30(1.0), 5).with_burst(2, 3);
        assert_eq!(
            injector.burst(),
            Some(BurstSchedule {
                burst_steps: 2,
                gap_steps: 3
            })
        );
        let (clean_logits, _) = model.prefill(&[1, 2, 3], &mut realm_llm::NoopHook).unwrap();

        // Steps 0 and 1 are in-burst, steps 2..5 are the gap, step 5 bursts again.
        let mut corrupted_steps = Vec::new();
        for step in 0..6u64 {
            injector.on_step_begin(step);
            assert_eq!(injector.burst_active(), step % 5 < 2, "step {step}");
            let before = injector.stats().errors_injected;
            let (logits, _) = model.prefill(&[1, 2, 3], &mut injector).unwrap();
            let injected = injector.stats().errors_injected > before;
            assert_eq!(injected, step % 5 < 2, "injection follows the window");
            assert_eq!(logits != clean_logits, injected);
            if injected {
                corrupted_steps.push(step);
            }
        }
        assert_eq!(corrupted_steps, vec![0, 1, 5]);

        // Removing the schedule restores steady injection regardless of the last step.
        injector.on_step_begin(2);
        injector.set_burst(None);
        assert!(injector.burst_active());
        let before = injector.stats().errors_injected;
        model.prefill(&[1, 2, 3], &mut injector).unwrap();
        assert!(injector.stats().errors_injected > before);
    }

    #[test]
    fn burst_injection_is_seed_deterministic() {
        let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
        let run = |seed| {
            let mut injector =
                ErrorInjector::everywhere(BitFlipModel::high_bits(1e-3), seed).with_burst(1, 2);
            let mut all_logits = Vec::new();
            for step in 0..6u64 {
                injector.on_step_begin(step);
                let (logits, _) = model.prefill(&[5, 6, 7], &mut injector).unwrap();
                all_logits.push(logits);
            }
            (all_logits, injector.stats().errors_injected)
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn shard_kill_is_survived_bit_exact_and_charged_to_the_shard() {
        let mut config = ModelConfig::tiny_opt();
        config.tp_degree = 3;
        let model = Model::new(&config, 1).unwrap();
        let clean = Model::new(&ModelConfig::tiny_opt(), 1)
            .unwrap()
            .generate(&[1, 2, 3], 6, &mut realm_llm::NoopHook)
            .unwrap();
        let mut injector = ErrorInjector::new(
            BitFlipModel::uniform(0.0), // the GEMM-level model stays silent
            Target::new().shard(1),
            9,
        );
        let group = std::sync::Arc::clone(model.tp_group().unwrap());
        let armed = injector.arm_shard_faults(&group, realm_tensor::ShardFault::Kill, 4);
        assert_eq!(armed, 1, "only the targeted shard is armed");
        let out = model.generate(&[1, 2, 3], 6, &mut injector).unwrap();
        assert_eq!(
            out, clean,
            "killed shard fails over without corrupting output"
        );
        assert_eq!(injector.stats().shard_faults_armed, 1);
        assert_eq!(injector.stats().per_shard.get(&1), Some(&1));
        let stats = model.shard_stats();
        assert_eq!(
            stats[1].kills, 4,
            "the shard was down for exactly 4 dispatches"
        );
        assert_eq!(stats[1].failovers, 4);
        assert_eq!(stats[0].kills + stats[2].kills, 0);
    }

    #[test]
    fn unfiltered_target_arms_every_shard_and_disabled_arms_none() {
        let mut config = ModelConfig::tiny_opt();
        config.tp_degree = 2;
        let model = Model::new(&config, 1).unwrap();
        let group = std::sync::Arc::clone(model.tp_group().unwrap());
        let mut injector = ErrorInjector::everywhere(BitFlipModel::uniform(0.0), 9);
        assert_eq!(
            injector.arm_shard_faults(&group, realm_tensor::ShardFault::Garble { seed: 7 }, 1),
            2
        );
        group.clear_shard_faults();
        injector.set_enabled(false);
        assert_eq!(
            injector.arm_shard_faults(&group, realm_tensor::ShardFault::Kill, 1),
            0
        );
        assert_eq!(injector.stats().shard_faults_armed, 2);
    }

    #[test]
    fn armed_garble_reaches_the_unprotected_sharded_datapath() {
        // The injector itself declines checksums, so generation under it runs the *plain*
        // sharded path: an armed garble must land in the output (nothing can detect it
        // here — that is the protector's job), and clearing the faults must restore
        // bit-exactness with the unsharded model.
        let mut config = ModelConfig::tiny_llama();
        config.tp_degree = 2;
        let model = Model::new(&config, 3).unwrap();
        let clean = Model::new(&ModelConfig::tiny_llama(), 3)
            .unwrap()
            .generate(&[2, 3, 4], 5, &mut realm_llm::NoopHook)
            .unwrap();
        let mut injector =
            ErrorInjector::new(BitFlipModel::uniform(0.0), Target::new().shard(0), 5);
        let group = std::sync::Arc::clone(model.tp_group().unwrap());
        injector.arm_shard_faults(&group, realm_tensor::ShardFault::Garble { seed: 11 }, 3);
        let corrupted = model.generate(&[2, 3, 4], 5, &mut injector).unwrap();
        assert_ne!(corrupted, clean, "the garble must reach the datapath");
        let totals = group.totals();
        assert!(totals.jobs > 0);
        assert_eq!(totals.detections, 0, "the plain path cannot detect");
        group.clear_shard_faults();
        let recovered = model.generate(&[2, 3, 4], 5, &mut injector).unwrap();
        assert_eq!(recovered, clean);
    }
}
