//! Fault abstractions: how errors are materialised inside an INT32 accumulator tensor.
//!
//! Three models cover everything the paper uses:
//!
//! * [`BitFlipModel`] — every bit of every accumulator element flips independently with
//!   probability `ber`, optionally restricted to the high bits (timing errors predominantly
//!   affect the more significant bits, Sec. III-A).
//! * [`FixedBitModel`] — flips a *specific* bit position with per-element probability `ber`;
//!   the paper's Q1.1/Q1.3/Q2.x protocols use the 30th bit.
//! * [`MagFreqModel`] — injects exactly `freq` identical errors of magnitude `mag`
//!   (`MSD = freq × mag`), the controlled model of Sec. III-B used to separate the effects of
//!   error magnitude and error frequency (Q1.4).

use rand::Rng;
use realm_tensor::rng::SeededRng;
use realm_tensor::MatI32;
use serde::{Deserialize, Serialize};

/// Width of the accumulator word errors are injected into.
pub const ACCUMULATOR_BITS: u8 = 32;

/// A fault model that corrupts INT32 accumulator tensors in place.
pub trait ErrorModel {
    /// Corrupts `acc` in place and returns the number of injected errors.
    fn corrupt(&self, rng: &mut SeededRng, acc: &mut MatI32) -> usize;

    /// A short human-readable description used in reports.
    fn describe(&self) -> String;
}

/// Independent random bit flips at a given bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitFlipModel {
    /// Probability that any individual bit within the eligible range flips.
    pub ber: f64,
    /// Lowest eligible bit position (inclusive).
    pub min_bit: u8,
    /// Highest eligible bit position (exclusive, at most 32).
    pub max_bit: u8,
}

impl BitFlipModel {
    /// Bit flips uniformly across all 32 accumulator bits.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 1]`.
    pub fn uniform(ber: f64) -> Self {
        Self::with_bit_range(ber, 0, ACCUMULATOR_BITS)
    }

    /// Bit flips restricted to the upper half of the accumulator (bits 16–31), reflecting the
    /// observation that timing errors affect the more significant bits.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 1]`.
    pub fn high_bits(ber: f64) -> Self {
        Self::with_bit_range(ber, 16, ACCUMULATOR_BITS)
    }

    /// Bit flips restricted to an explicit `[min_bit, max_bit)` range.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`, the range is empty, or `max_bit > 32`.
    pub fn with_bit_range(ber: f64, min_bit: u8, max_bit: u8) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER {ber} must be in [0, 1]");
        assert!(min_bit < max_bit, "empty bit range {min_bit}..{max_bit}");
        assert!(max_bit <= ACCUMULATOR_BITS, "max_bit {max_bit} exceeds 32");
        Self {
            ber,
            min_bit,
            max_bit,
        }
    }

    fn eligible_bits(&self) -> u32 {
        (self.max_bit - self.min_bit) as u32
    }
}

impl ErrorModel for BitFlipModel {
    fn corrupt(&self, rng: &mut SeededRng, acc: &mut MatI32) -> usize {
        if self.ber <= 0.0 || acc.is_empty() {
            return 0;
        }
        let bits = self.eligible_bits();
        let mut injected = 0usize;
        // Expected flips per element = ber * bits; for the small BERs used in practice, sample
        // the number of flipped bits per element from the exact Bernoulli process only when a
        // first coarse filter passes, to keep the fault-free fast path cheap.
        let p_any = 1.0 - (1.0 - self.ber).powi(bits as i32);
        for v in acc.iter_mut() {
            if rng.gen::<f64>() >= p_any {
                continue;
            }
            // At least one flip happens in this element; walk the bits with the conditional
            // distribution (simple rejection: re-draw until at least one bit flips).
            let mut mask = 0u32;
            loop {
                for b in self.min_bit..self.max_bit {
                    if rng.gen::<f64>() < self.ber {
                        mask |= 1u32 << b;
                    }
                }
                if mask != 0 {
                    break;
                }
            }
            injected += mask.count_ones() as usize;
            *v = (*v as u32 ^ mask) as i32;
        }
        injected
    }

    fn describe(&self) -> String {
        format!(
            "random bit flips, BER {:.2e}, bits {}..{}",
            self.ber, self.min_bit, self.max_bit
        )
    }
}

/// Flips one specific bit position with a per-element probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedBitModel {
    /// Probability that the bit flips in any given accumulator element.
    pub ber: f64,
    /// Bit position to flip (0 = LSB, 31 = sign bit).
    pub bit: u8,
}

impl FixedBitModel {
    /// Creates a fixed-bit model.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]` or `bit >= 32`.
    pub fn new(ber: f64, bit: u8) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER {ber} must be in [0, 1]");
        assert!(bit < ACCUMULATOR_BITS, "bit {bit} out of range");
        Self { ber, bit }
    }

    /// The paper's default protocol: flip the 30th bit.
    pub fn bit30(ber: f64) -> Self {
        Self::new(ber, 30)
    }
}

impl ErrorModel for FixedBitModel {
    fn corrupt(&self, rng: &mut SeededRng, acc: &mut MatI32) -> usize {
        if self.ber <= 0.0 {
            return 0;
        }
        let mut injected = 0usize;
        let mask = 1u32 << self.bit;
        for v in acc.iter_mut() {
            if rng.gen::<f64>() < self.ber {
                *v = (*v as u32 ^ mask) as i32;
                injected += 1;
            }
        }
        injected
    }

    fn describe(&self) -> String {
        format!("bit {} flips, BER {:.2e}", self.bit, self.ber)
    }
}

/// Injects exactly `freq` identical errors of magnitude `mag` per corrupted tensor.
///
/// This is the controlled model of Sec. III-B: the matrix-sum deviation it produces is
/// `MSD = freq × mag`, which lets the characterization separate "one huge error" from "many
/// small errors" at identical MSD (Q1.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MagFreqModel {
    /// Magnitude added to each corrupted accumulator element.
    pub mag: i64,
    /// Number of corrupted elements per targeted GEMM result.
    pub freq: usize,
}

impl MagFreqModel {
    /// Creates a magnitude/frequency model.
    pub fn new(mag: i64, freq: usize) -> Self {
        Self { mag, freq }
    }

    /// Creates a model from a target MSD and an error frequency (`mag = msd / freq`).
    ///
    /// # Panics
    ///
    /// Panics if `freq` is zero.
    pub fn from_msd(msd: i64, freq: usize) -> Self {
        assert!(freq > 0, "frequency must be positive");
        Self {
            mag: msd / freq as i64,
            freq,
        }
    }

    /// The matrix-sum deviation this model produces per corrupted tensor.
    pub fn msd(&self) -> i64 {
        self.mag * self.freq as i64
    }
}

impl ErrorModel for MagFreqModel {
    fn corrupt(&self, rng: &mut SeededRng, acc: &mut MatI32) -> usize {
        if self.freq == 0 || self.mag == 0 || acc.is_empty() {
            return 0;
        }
        let n = acc.len();
        let count = self.freq.min(n);
        // Sample `count` distinct positions (Floyd's algorithm keeps this O(count)).
        let mut chosen = std::collections::HashSet::with_capacity(count);
        for j in (n - count)..n {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let slice = acc.as_mut_slice();
        for &idx in &chosen {
            slice[idx] = slice[idx].wrapping_add(self.mag as i32);
        }
        count
    }

    fn describe(&self) -> String {
        format!(
            "controlled errors, mag 2^{:.1}, freq {}, MSD 2^{:.1}",
            (self.mag.abs().max(1) as f64).log2(),
            self.freq,
            (self.msd().abs().max(1) as f64).log2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_tensor::rng::seeded;

    #[test]
    fn zero_ber_injects_nothing() {
        let mut rng = seeded(1);
        let mut acc = MatI32::filled(16, 16, 42);
        let clean = acc.clone();
        assert_eq!(BitFlipModel::uniform(0.0).corrupt(&mut rng, &mut acc), 0);
        assert_eq!(acc, clean);
    }

    #[test]
    fn high_ber_corrupts_most_elements() {
        let mut rng = seeded(2);
        let mut acc = MatI32::zeros(32, 32);
        let injected = BitFlipModel::uniform(0.05).corrupt(&mut rng, &mut acc);
        assert!(injected > 500, "expected many flips, got {injected}");
        let changed = acc.iter().filter(|&&v| v != 0).count();
        assert!(changed > 500);
    }

    #[test]
    fn injected_count_tracks_changed_bits() {
        let mut rng = seeded(3);
        let mut acc = MatI32::zeros(64, 64);
        let injected = BitFlipModel::high_bits(1e-3).corrupt(&mut rng, &mut acc);
        let set_bits: u32 = acc.iter().map(|&v| (v as u32).count_ones()).sum();
        assert_eq!(injected as u32, set_bits);
        // All flips must land in the configured high-bit range.
        for &v in acc.iter() {
            assert_eq!(v as u32 & 0x0000_FFFF, 0, "low bit flipped: {v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_ber_is_rejected() {
        let _ = BitFlipModel::uniform(1.5);
    }

    #[test]
    fn fixed_bit_model_only_touches_one_bit() {
        let mut rng = seeded(4);
        let mut acc = MatI32::zeros(32, 32);
        let injected = FixedBitModel::bit30(0.02).corrupt(&mut rng, &mut acc);
        assert!(injected > 0);
        for &v in acc.iter() {
            assert!(v == 0 || v as u32 == 1 << 30, "unexpected value {v:#x}");
        }
        let changed = acc.iter().filter(|&&v| v != 0).count();
        assert_eq!(changed, injected);
    }

    #[test]
    fn magfreq_injects_exact_count_and_msd() {
        let mut rng = seeded(5);
        let mut acc = MatI32::zeros(16, 16);
        let model = MagFreqModel::new(1 << 20, 8);
        let injected = model.corrupt(&mut rng, &mut acc);
        assert_eq!(injected, 8);
        let sum: i64 = acc.iter().map(|&v| v as i64).sum();
        assert_eq!(sum, model.msd());
        let touched = acc.iter().filter(|&&v| v != 0).count();
        assert_eq!(touched, 8, "errors must land on distinct elements");
    }

    #[test]
    fn magfreq_from_msd_divides_magnitude() {
        let m = MagFreqModel::from_msd(1 << 24, 1 << 4);
        assert_eq!(m.mag, 1 << 20);
        assert_eq!(m.msd(), 1 << 24);
    }

    #[test]
    fn magfreq_caps_frequency_at_tensor_size() {
        let mut rng = seeded(6);
        let mut acc = MatI32::zeros(2, 2);
        let injected = MagFreqModel::new(10, 100).corrupt(&mut rng, &mut acc);
        assert_eq!(injected, 4);
        assert!(acc.iter().all(|&v| v == 10));
    }

    #[test]
    fn describe_mentions_key_parameters() {
        assert!(BitFlipModel::uniform(1e-4).describe().contains("1.00e-4"));
        assert!(FixedBitModel::bit30(0.5).describe().contains("bit 30"));
        assert!(MagFreqModel::new(1 << 10, 4).describe().contains("freq 4"));
    }

    #[test]
    fn corrupt_is_deterministic_for_a_seed() {
        let model = BitFlipModel::uniform(1e-3);
        let run = |seed| {
            let mut rng = seeded(seed);
            let mut acc = MatI32::zeros(32, 32);
            model.corrupt(&mut rng, &mut acc);
            acc
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
