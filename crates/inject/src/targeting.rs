//! Selection of which GEMMs receive injected errors.
//!
//! The paper's characterization sweeps errors over individual network components (Q1.3,
//! Q2.2), individual layers (Q1.1) and individual inference stages (Q2.1). A [`Target`]
//! expresses any combination of those filters; an empty filter means "no restriction".

use realm_llm::{Component, GemmContext, GemmOrigin, Stage};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A filter over [`GemmContext`]s selecting the GEMMs to corrupt.
///
/// All configured dimensions must match for a GEMM to be targeted; unset dimensions match
/// everything. The default target matches every GEMM in the model.
///
/// The sequence filter selects batch sequence indices in batched trials. A batch-stacked
/// GEMM ([`GemmOrigin::BatchedRows`]) carries rows of *every* sequence, so it still matches
/// a sequence-filtered target; the injector is responsible for restricting corruption to the
/// targeted sequences' rows (see `ErrorInjector`).
///
/// # Example
///
/// ```
/// use realm_inject::targeting::Target;
/// use realm_llm::{Component, GemmContext, Stage};
///
/// let target = Target::new().components([Component::O]).stages([Stage::Prefill]);
/// let ctx = GemmContext::new(Component::O, 3, Stage::Prefill, 0);
/// assert!(target.matches(&ctx));
/// let ctx = GemmContext::new(Component::O, 3, Stage::Decode, 0);
/// assert!(!target.matches(&ctx));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Target {
    components: Option<BTreeSet<Component>>,
    layers: Option<BTreeSet<usize>>,
    stages: Option<BTreeSet<Stage>>,
    sequences: Option<BTreeSet<usize>>,
    shards: Option<BTreeSet<usize>>,
}

impl Target {
    /// A target that matches every GEMM.
    pub fn new() -> Self {
        Self::default()
    }

    /// A target that matches every GEMM (alias of [`Target::new`], reads better in configs).
    pub fn everything() -> Self {
        Self::default()
    }

    /// Restricts the target to the given network components.
    pub fn components(mut self, components: impl IntoIterator<Item = Component>) -> Self {
        self.components = Some(components.into_iter().collect());
        self
    }

    /// Restricts the target to the given layer indices.
    pub fn layers(mut self, layers: impl IntoIterator<Item = usize>) -> Self {
        self.layers = Some(layers.into_iter().collect());
        self
    }

    /// Restricts the target to the given inference stages.
    pub fn stages(mut self, stages: impl IntoIterator<Item = Stage>) -> Self {
        self.stages = Some(stages.into_iter().collect());
        self
    }

    /// Restricts the target to a single component (convenience wrapper).
    pub fn component(self, component: Component) -> Self {
        self.components([component])
    }

    /// Restricts the target to a single layer (convenience wrapper).
    pub fn layer(self, layer: usize) -> Self {
        self.layers([layer])
    }

    /// Restricts the target to a single stage (convenience wrapper).
    pub fn stage(self, stage: Stage) -> Self {
        self.stages([stage])
    }

    /// Restricts the target to the given batch sequence indices.
    pub fn sequences(mut self, sequences: impl IntoIterator<Item = usize>) -> Self {
        self.sequences = Some(sequences.into_iter().collect());
        self
    }

    /// Restricts the target to a single batch sequence (convenience wrapper).
    pub fn sequence(self, sequence: usize) -> Self {
        self.sequences([sequence])
    }

    /// Restricts the target to the given tensor-parallel shard indices.
    ///
    /// The shard axis selects whole fault domains for the whole-shard scenarios
    /// (`ErrorInjector::arm_shard_faults`), not individual GEMMs: sharding happens below
    /// the hook interface, so [`Target::matches`] — which filters per-GEMM contexts — is
    /// unaffected by this axis.
    pub fn shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.shards = Some(shards.into_iter().collect());
        self
    }

    /// Restricts the target to a single tensor-parallel shard (convenience wrapper).
    pub fn shard(self, shard: usize) -> Self {
        self.shards([shard])
    }

    /// Returns `true` if the GEMM described by `ctx` is selected by this target.
    pub fn matches(&self, ctx: &GemmContext) -> bool {
        self.components
            .as_ref()
            .is_none_or(|s| s.contains(&ctx.component))
            && self.layers.as_ref().is_none_or(|s| s.contains(&ctx.layer))
            && self.stages.as_ref().is_none_or(|s| s.contains(&ctx.stage))
            && self.sequences.as_ref().is_none_or(|s| match ctx.origin {
                GemmOrigin::Sequence(seq) => s.contains(&seq),
                // Batch-stacked GEMMs carry every sequence's rows; the injector narrows
                // corruption to the targeted rows.
                GemmOrigin::BatchedRows => true,
            })
    }

    /// Returns the configured component filter, if any.
    pub fn component_filter(&self) -> Option<&BTreeSet<Component>> {
        self.components.as_ref()
    }

    /// Returns the configured layer filter, if any.
    pub fn layer_filter(&self) -> Option<&BTreeSet<usize>> {
        self.layers.as_ref()
    }

    /// Returns the configured stage filter, if any.
    pub fn stage_filter(&self) -> Option<&BTreeSet<Stage>> {
        self.stages.as_ref()
    }

    /// Returns the configured batch-sequence filter, if any.
    pub fn sequence_filter(&self) -> Option<&BTreeSet<usize>> {
        self.sequences.as_ref()
    }

    /// Returns the configured tensor-parallel shard filter, if any.
    pub fn shard_filter(&self) -> Option<&BTreeSet<usize>> {
        self.shards.as_ref()
    }

    /// A one-line description used in experiment reports.
    pub fn describe(&self) -> String {
        let fmt_set = |name: &str, items: Option<String>| match items {
            Some(s) => format!("{name}={{{s}}}"),
            None => format!("{name}=all"),
        };
        let components = self.components.as_ref().map(|s| {
            s.iter()
                .map(|c| c.label().to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        let layers = self.layers.as_ref().map(|s| {
            s.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        let stages = self.stages.as_ref().map(|s| {
            s.iter()
                .map(|st| st.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        let sequences = self.sequences.as_ref().map(|s| {
            s.iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        let shards = self.shards.as_ref().map(|s| {
            s.iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
        format!(
            "{} {} {} {} {}",
            fmt_set("components", components),
            fmt_set("layers", layers),
            fmt_set("stages", stages),
            fmt_set("sequences", sequences),
            fmt_set("shards", shards)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(component: Component, layer: usize, stage: Stage) -> GemmContext {
        GemmContext::new(component, layer, stage, 0)
    }

    #[test]
    fn default_target_matches_everything() {
        let t = Target::new();
        assert!(t.matches(&ctx(Component::Q, 0, Stage::Prefill)));
        assert!(t.matches(&ctx(Component::Down, 31, Stage::Decode)));
        assert_eq!(t, Target::everything());
    }

    #[test]
    fn component_filter_is_exact() {
        let t = Target::new().components([Component::O, Component::Fc2]);
        assert!(t.matches(&ctx(Component::O, 2, Stage::Prefill)));
        assert!(t.matches(&ctx(Component::Fc2, 5, Stage::Decode)));
        assert!(!t.matches(&ctx(Component::Q, 2, Stage::Prefill)));
    }

    #[test]
    fn layer_and_stage_filters_compose() {
        let t = Target::new().layer(3).stage(Stage::Decode);
        assert!(t.matches(&ctx(Component::Q, 3, Stage::Decode)));
        assert!(!t.matches(&ctx(Component::Q, 3, Stage::Prefill)));
        assert!(!t.matches(&ctx(Component::Q, 4, Stage::Decode)));
    }

    #[test]
    fn single_item_conveniences_match_set_forms() {
        assert_eq!(
            Target::new().component(Component::K),
            Target::new().components([Component::K])
        );
        assert_eq!(Target::new().layer(1), Target::new().layers([1]));
        assert_eq!(
            Target::new().stage(Stage::Prefill),
            Target::new().stages([Stage::Prefill])
        );
    }

    #[test]
    fn describe_lists_filters() {
        let t = Target::new().component(Component::O).layer(2);
        let d = t.describe();
        assert!(d.contains("O"));
        assert!(d.contains("2"));
        assert!(d.contains("stages=all"));
        assert!(Target::new().describe().contains("components=all"));
    }

    #[test]
    fn sequence_filter_selects_batch_sequences() {
        let t = Target::new().sequence(2);
        let per_seq = |seq| ctx(Component::Q, 0, Stage::Prefill).for_sequence(seq);
        assert!(t.matches(&per_seq(2)));
        assert!(!t.matches(&per_seq(0)));
        // Single-sequence runs report Sequence(0); a sequence-0 filter matches them.
        assert!(Target::new()
            .sequence(0)
            .matches(&ctx(Component::Q, 0, Stage::Prefill)));
        // Batch-stacked GEMMs carry every sequence's rows, so they stay targeted; the
        // injector narrows corruption to the filtered rows.
        assert!(t.matches(&ctx(Component::Q, 0, Stage::Prefill).batched()));
        assert_eq!(t.sequence_filter().unwrap().len(), 1);
        assert!(t.describe().contains("sequences={2}"));
    }

    #[test]
    fn shard_filter_selects_fault_domains_not_gemms() {
        let t = Target::new().shard(2);
        assert_eq!(t.shard_filter().unwrap().len(), 1);
        assert!(t.describe().contains("shards={2}"));
        assert!(Target::new().describe().contains("shards=all"));
        // The shard axis never restricts per-GEMM matching: sharding happens below the
        // hook interface.
        assert!(t.matches(&ctx(Component::Q, 0, Stage::Prefill)));
        assert_eq!(Target::new().shard(1), Target::new().shards([1]));
    }

    #[test]
    fn filters_are_accessible() {
        let t = Target::new().components([Component::Q]).layers([0, 1]);
        assert_eq!(t.component_filter().unwrap().len(), 1);
        assert_eq!(t.layer_filter().unwrap().len(), 2);
        assert!(t.stage_filter().is_none());
    }
}
