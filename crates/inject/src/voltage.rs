//! Operating-voltage ↔ bit-error-rate relationship (the shape of Fig. 1(a)).
//!
//! The paper obtains its voltage/BER curve from gate-level timing analysis of a 256×256
//! systolic array synthesised on a commercial 14 nm PDK (nominal 0.9 V), in line with prior
//! silicon measurements. That toolchain is not available here, so the curve is modelled
//! analytically: timing-error probability grows roughly exponentially as the supply voltage
//! is scaled below the point where the critical path no longer fits in the clock period,
//! which appears as a straight line on the paper's log-BER axis. The default parameters are
//! calibrated so that the BER is negligible at nominal voltage and reaches ~1e-2 around
//! 0.55–0.6 V, matching the range the paper sweeps.

use serde::{Deserialize, Serialize};

/// Log-linear mapping between operating voltage and computation bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageBerCurve {
    /// Nominal operating voltage in volts (BER is `ber_nominal` here).
    pub nominal_voltage: f64,
    /// BER at the nominal voltage (a tiny but non-zero residual rate).
    pub ber_nominal: f64,
    /// Decades of BER increase per volt of undervolting.
    pub decades_per_volt: f64,
    /// BER ceiling (a fully broken datapath flips about half its bits).
    pub ber_max: f64,
}

impl VoltageBerCurve {
    /// The default curve used throughout the reproduction: nominal 0.9 V, BER 1e-10 at
    /// nominal, ~23 decades/V, matching the BER range of Fig. 1(a) (1e-8 … 1e-2) over the
    /// 0.55–0.9 V sweep used in the evaluation.
    pub fn default_14nm() -> Self {
        Self {
            nominal_voltage: 0.9,
            ber_nominal: 1e-10,
            decades_per_volt: 23.0,
            ber_max: 0.5,
        }
    }

    /// Creates a custom curve.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `ber_nominal > ber_max`.
    pub fn new(
        nominal_voltage: f64,
        ber_nominal: f64,
        decades_per_volt: f64,
        ber_max: f64,
    ) -> Self {
        assert!(nominal_voltage > 0.0, "nominal voltage must be positive");
        assert!(ber_nominal > 0.0 && ber_max > 0.0, "BERs must be positive");
        assert!(decades_per_volt > 0.0, "slope must be positive");
        assert!(
            ber_nominal <= ber_max,
            "nominal BER cannot exceed the ceiling"
        );
        Self {
            nominal_voltage,
            ber_nominal,
            decades_per_volt,
            ber_max,
        }
    }

    /// Bit-error rate at the given operating voltage.
    pub fn ber_at(&self, voltage: f64) -> f64 {
        let undervolt = (self.nominal_voltage - voltage).max(0.0);
        let log_ber = self.ber_nominal.log10() + self.decades_per_volt * undervolt;
        10f64.powf(log_ber).min(self.ber_max)
    }

    /// The lowest voltage at which the BER stays at or below `target_ber`.
    ///
    /// Returns the nominal voltage if the target is below the nominal BER.
    pub fn voltage_for_ber(&self, target_ber: f64) -> f64 {
        if target_ber <= self.ber_nominal {
            return self.nominal_voltage;
        }
        let decades = target_ber.log10() - self.ber_nominal.log10();
        (self.nominal_voltage - decades / self.decades_per_volt).max(0.0)
    }

    /// Convenience sweep: `(voltage, BER)` pairs from `v_low` to `v_high` in `steps` steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or `v_low >= v_high`.
    pub fn sweep(&self, v_low: f64, v_high: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2, "a sweep needs at least two points");
        assert!(v_low < v_high, "sweep range is empty");
        (0..steps)
            .map(|i| {
                let v = v_low + (v_high - v_low) * i as f64 / (steps - 1) as f64;
                (v, self.ber_at(v))
            })
            .collect()
    }
}

impl Default for VoltageBerCurve {
    fn default() -> Self {
        Self::default_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_is_monotonically_decreasing_in_voltage() {
        let curve = VoltageBerCurve::default_14nm();
        let mut previous = f64::INFINITY;
        for step in 0..=35 {
            let v = 0.55 + step as f64 * 0.01;
            let ber = curve.ber_at(v);
            assert!(ber <= previous, "BER must not increase with voltage");
            previous = ber;
        }
    }

    #[test]
    fn nominal_voltage_has_negligible_ber() {
        let curve = VoltageBerCurve::default_14nm();
        assert!(curve.ber_at(0.9) <= 1e-10);
        assert!(
            curve.ber_at(1.0) <= 1e-10,
            "overvolting never increases BER"
        );
    }

    #[test]
    fn low_voltage_reaches_percent_level_ber() {
        let curve = VoltageBerCurve::default_14nm();
        let ber_060 = curve.ber_at(0.60);
        let ber_055 = curve.ber_at(0.55);
        assert!(ber_060 > 1e-4 && ber_060 < 1e-1, "0.60 V BER {ber_060}");
        assert!(ber_055 > ber_060);
    }

    #[test]
    fn ber_is_capped() {
        let curve = VoltageBerCurve::default_14nm();
        assert!(curve.ber_at(0.0) <= 0.5);
    }

    #[test]
    fn voltage_for_ber_inverts_ber_at() {
        let curve = VoltageBerCurve::default_14nm();
        for target in [1e-8, 1e-6, 1e-4, 1e-2] {
            let v = curve.voltage_for_ber(target);
            let ber = curve.ber_at(v);
            assert!(
                (ber.log10() - target.log10()).abs() < 1e-6,
                "target {target} voltage {v} ber {ber}"
            );
        }
        assert_eq!(curve.voltage_for_ber(1e-20), curve.nominal_voltage);
    }

    #[test]
    fn sweep_covers_requested_range() {
        let curve = VoltageBerCurve::default_14nm();
        let points = curve.sweep(0.6, 0.9, 7);
        assert_eq!(points.len(), 7);
        assert!((points[0].0 - 0.6).abs() < 1e-12);
        assert!((points[6].0 - 0.9).abs() < 1e-12);
        assert!(points[0].1 > points[6].1);
    }

    #[test]
    #[should_panic(expected = "slope must be positive")]
    fn invalid_slope_is_rejected() {
        let _ = VoltageBerCurve::new(0.9, 1e-10, 0.0, 0.5);
    }
}
