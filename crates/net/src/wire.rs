//! The application-level wire format carried over HTTP: the `/generate` request body and
//! the token-stream lines inside the chunked response.
//!
//! # Request body
//!
//! `POST /generate` takes a form-style body — easy to produce from `curl -d`:
//!
//! ```text
//! prompt=1,5,9&max_new_tokens=8&priority=2&policy=classical
//! ```
//!
//! `prompt` (comma-separated token ids) and `max_new_tokens` are required; `priority`
//! (default 0) and `policy` (default `statistical`) are optional. Unknown keys are
//! rejected so client typos surface as `400`s instead of silently-defaulted requests.
//!
//! # Response stream
//!
//! Each chunk of the response carries whole lines:
//!
//! ```text
//! t <index> <token> <margin-bits-hex>
//! done id=<id> tokens=<n> prompt_len=<p> queued_steps=<q> service_steps=<s> detections=<d> recoveries=<r> policy=<name>
//! ```
//!
//! The greedy-decode margin is transported as the raw `f32` bit pattern in hex, so the
//! conformance tests can assert the served stream **bit-identical** to the in-process
//! [`realm_serve::TokenEvent`]s — no decimal round-trip ambiguity.

use realm_core::protection::ProtectionPolicy;
use realm_serve::{RequestSummary, ServeRequest, TokenEvent};
use realm_systolic::ProtectionScheme;

/// A parsed `/generate` request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenBody {
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Generation budget.
    pub max_new_tokens: usize,
    /// Scheduling priority (higher first).
    pub priority: u8,
    /// Requested ABFT protection policy.
    pub policy: ProtectionPolicy,
}

impl GenBody {
    /// The equivalent in-process serving request.
    pub fn to_request(&self) -> ServeRequest {
        ServeRequest::new(self.prompt.clone(), self.max_new_tokens)
            .with_priority(self.priority)
            .with_policy(self.policy)
    }
}

/// Wire name of a protection policy (round-trips through [`parse_policy`]).
pub fn policy_name(policy: ProtectionPolicy) -> &'static str {
    match policy.scheme {
        ProtectionScheme::None => "unprotected",
        ProtectionScheme::ApproxAbft => "approx",
        ProtectionScheme::StatisticalAbft => "statistical",
        ProtectionScheme::ThunderVolt => "thundervolt",
        ProtectionScheme::RazorFfs => "razor",
        ProtectionScheme::Dmr => "dmr",
        ProtectionScheme::ClassicalAbft => "classical",
    }
}

/// Parses a wire policy name back into a [`ProtectionPolicy`].
///
/// # Errors
///
/// Returns a human-readable message naming the accepted values.
pub fn parse_policy(name: &str) -> Result<ProtectionPolicy, String> {
    let scheme = match name.trim().to_ascii_lowercase().as_str() {
        "unprotected" | "none" => ProtectionScheme::None,
        "approx" => ProtectionScheme::ApproxAbft,
        "statistical" => ProtectionScheme::StatisticalAbft,
        "thundervolt" => ProtectionScheme::ThunderVolt,
        "razor" => ProtectionScheme::RazorFfs,
        "dmr" => ProtectionScheme::Dmr,
        "classical" => ProtectionScheme::ClassicalAbft,
        other => {
            return Err(format!(
                "unknown policy '{other}' (expected unprotected, approx, statistical, \
                 thundervolt, razor, dmr or classical)"
            ))
        }
    };
    Ok(ProtectionPolicy::new(scheme))
}

/// Serializes a [`GenBody`] into the form-style request body.
pub fn encode_gen_body(body: &GenBody) -> String {
    let prompt = body
        .prompt
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "prompt={prompt}&max_new_tokens={}&priority={}&policy={}",
        body.max_new_tokens,
        body.priority,
        policy_name(body.policy)
    )
}

/// Parses a `/generate` request body.
///
/// # Errors
///
/// Returns a human-readable message for missing/duplicate/unknown keys or unparseable
/// values; the server answers these with `400`.
pub fn parse_gen_body(body: &str) -> Result<GenBody, String> {
    let mut prompt: Option<Vec<u32>> = None;
    let mut max_new_tokens: Option<usize> = None;
    let mut priority: u8 = 0;
    let mut policy = ProtectionPolicy::default();
    for pair in body.split('&').filter(|p| !p.is_empty()) {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("'{pair}' is not a key=value pair"));
        };
        match key {
            "prompt" => {
                let tokens = value
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        t.trim()
                            .parse::<u32>()
                            .map_err(|_| format!("prompt token '{t}' is not a u32"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                if prompt.replace(tokens).is_some() {
                    return Err("duplicate 'prompt' key".into());
                }
            }
            "max_new_tokens" => {
                let n = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("max_new_tokens '{value}' is not a usize"))?;
                if max_new_tokens.replace(n).is_some() {
                    return Err("duplicate 'max_new_tokens' key".into());
                }
            }
            "priority" => {
                priority = value
                    .trim()
                    .parse::<u8>()
                    .map_err(|_| format!("priority '{value}' is not a u8"))?;
            }
            "policy" => policy = parse_policy(value)?,
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    Ok(GenBody {
        prompt: prompt.ok_or("missing required key 'prompt'")?,
        max_new_tokens: max_new_tokens.ok_or("missing required key 'max_new_tokens'")?,
        priority,
        policy,
    })
}

/// One event parsed from (or formatted into) the response stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A generated token.
    Token {
        /// Zero-based position in the generated output.
        index: usize,
        /// The committed token id.
        token: u32,
        /// Raw bit pattern of the greedy-decode margin (`f32::to_bits`).
        margin_bits: u32,
    },
    /// The request completed; mirrors the fields of [`RequestSummary`] that cross the wire.
    Done {
        /// Engine-assigned request id.
        id: u64,
        /// Number of generated tokens.
        tokens: usize,
        /// Prompt length in tokens.
        prompt_len: usize,
        /// Engine steps spent queued before admission.
        queued_steps: u64,
        /// Engine steps between admission and completion.
        service_steps: u64,
        /// ABFT detections charged to this request.
        detections: u64,
        /// ABFT recoveries charged to this request.
        recoveries: u64,
        /// Wire name of the policy the request ran under.
        policy: String,
    },
}

/// Formats a streamed [`TokenEvent`] as one wire line (newline included).
pub fn format_event(event: &TokenEvent) -> String {
    match event {
        TokenEvent::Token {
            index,
            token,
            margin,
            ..
        } => format!("t {index} {token} {:08x}\n", margin.to_bits()),
        TokenEvent::Done(summary) => format_done(summary),
    }
}

/// Formats the terminal summary line (newline included).
pub fn format_done(summary: &RequestSummary) -> String {
    format!(
        "done id={} tokens={} prompt_len={} queued_steps={} service_steps={} detections={} \
         recoveries={} policy={}\n",
        summary.id,
        summary.tokens.len(),
        summary.prompt_len,
        summary.queued_steps,
        summary.service_steps,
        summary.attribution.detections,
        summary.attribution.recoveries,
        policy_name(summary.policy)
    )
}

/// Parses one stream line back into a [`WireEvent`].
///
/// # Errors
///
/// Returns a human-readable message when the line matches neither format.
pub fn parse_event(line: &str) -> Result<WireEvent, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(rest) = line.strip_prefix("t ") {
        let mut parts = rest.split(' ');
        let (Some(index), Some(token), Some(bits), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("token line '{line}' is not 't INDEX TOKEN MARGIN'"));
        };
        return Ok(WireEvent::Token {
            index: index
                .parse()
                .map_err(|_| format!("bad token index in '{line}'"))?,
            token: token
                .parse()
                .map_err(|_| format!("bad token id in '{line}'"))?,
            margin_bits: u32::from_str_radix(bits, 16)
                .map_err(|_| format!("bad margin bits in '{line}'"))?,
        });
    }
    if let Some(rest) = line.strip_prefix("done ") {
        let field = |key: &str| -> Result<String, String> {
            rest.split(' ')
                .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
                .map(str::to_string)
                .ok_or_else(|| format!("done line '{line}' is missing '{key}='"))
        };
        let num = |v: String, what: &str| -> Result<u64, String> {
            v.parse().map_err(|_| format!("bad {what} in '{line}'"))
        };
        return Ok(WireEvent::Done {
            id: num(field("id")?, "id")?,
            tokens: num(field("tokens")?, "tokens")? as usize,
            prompt_len: num(field("prompt_len")?, "prompt_len")? as usize,
            queued_steps: num(field("queued_steps")?, "queued_steps")?,
            service_steps: num(field("service_steps")?, "service_steps")?,
            detections: num(field("detections")?, "detections")?,
            recoveries: num(field("recoveries")?, "recoveries")?,
            policy: field("policy")?,
        });
    }
    Err(format!("unrecognised stream line '{line}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use realm_core::protection::SequenceAttribution;

    #[test]
    fn gen_body_round_trips() {
        let body = GenBody {
            prompt: vec![1, 5, 9],
            max_new_tokens: 8,
            priority: 3,
            policy: ProtectionPolicy::classical(),
        };
        let encoded = encode_gen_body(&body);
        assert_eq!(
            encoded,
            "prompt=1,5,9&max_new_tokens=8&priority=3&policy=classical"
        );
        assert_eq!(parse_gen_body(&encoded).unwrap(), body);
        let request = body.to_request();
        assert_eq!(request.prompt, vec![1, 5, 9]);
        assert_eq!(request.priority, 3);
    }

    #[test]
    fn gen_body_defaults_and_rejections() {
        let body = parse_gen_body("prompt=4&max_new_tokens=2").unwrap();
        assert_eq!(body.priority, 0);
        assert_eq!(body.policy, ProtectionPolicy::statistical());
        for bad in [
            "max_new_tokens=2",                         // missing prompt
            "prompt=1,2",                               // missing budget
            "prompt=1&max_new_tokens=2&unknown=1",      // unknown key
            "prompt=1&prompt=2&max_new_tokens=2",       // duplicate
            "prompt=x&max_new_tokens=2",                // bad token
            "prompt=1&max_new_tokens=two",              // bad budget
            "prompt=1&max_new_tokens=2&priority=300",   // u8 overflow
            "prompt=1&max_new_tokens=2&policy=quantum", // unknown policy
            "prompt=1&max_new_tokens=2&noequals",       // not key=value
        ] {
            assert!(parse_gen_body(bad).is_err(), "must reject '{bad}'");
        }
    }

    #[test]
    fn every_policy_name_round_trips() {
        use realm_systolic::ProtectionScheme as S;
        for scheme in [
            S::None,
            S::ApproxAbft,
            S::StatisticalAbft,
            S::ThunderVolt,
            S::RazorFfs,
            S::Dmr,
            S::ClassicalAbft,
        ] {
            let policy = ProtectionPolicy::new(scheme);
            assert_eq!(parse_policy(policy_name(policy)).unwrap(), policy);
        }
    }

    #[test]
    fn stream_lines_round_trip_bit_exactly() {
        let margin = 1.2345678e-3_f32;
        let event = TokenEvent::Token {
            id: 7,
            index: 2,
            token: 41,
            margin,
        };
        let line = format_event(&event);
        let WireEvent::Token {
            index,
            token,
            margin_bits,
        } = parse_event(&line).unwrap()
        else {
            panic!("token line parses as a token");
        };
        assert_eq!((index, token), (2, 41));
        assert_eq!(
            margin_bits,
            margin.to_bits(),
            "margin crosses the wire bit-exactly"
        );

        let summary = RequestSummary {
            id: 9,
            tokens: vec![1, 2, 3],
            margins: vec![0.5, 0.25, 0.125],
            prompt_len: 4,
            queued_steps: 2,
            service_steps: 3,
            attribution: SequenceAttribution {
                detections: 5,
                recoveries: 4,
            },
            escalations: 0,
            policy: ProtectionPolicy::unprotected(),
        };
        let line = format_done(&summary);
        let WireEvent::Done {
            id,
            tokens,
            detections,
            recoveries,
            policy,
            ..
        } = parse_event(&line).unwrap()
        else {
            panic!("done line parses as done");
        };
        assert_eq!((id, tokens, detections, recoveries), (9, 3, 5, 4));
        assert_eq!(policy, "unprotected");
        assert!(parse_event("garbage line").is_err());
    }
}
