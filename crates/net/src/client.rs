//! A minimal blocking HTTP client for the front end — used by the load generator, the
//! conformance tests and the CI smoke harness.
//!
//! Two entry points:
//!
//! * [`http_request`] — one non-streaming request/response round trip (`/stats`,
//!   `/healthz`, `/admin/drain`, error paths of `/generate`).
//! * [`stream_generate`] — `POST /generate` consuming the chunked token stream
//!   incrementally, timestamping every event for TTFT/TPOT measurement, optionally
//!   disconnecting mid-stream to exercise cancel-on-disconnect.

use crate::http::{ChunkDecoder, HttpResponse, ResponseParser};
use crate::wire::{encode_gen_body, parse_event, GenBody, WireEvent};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Outcome of one streamed `/generate` call.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// HTTP status line code (`200` for an accepted stream, `429` when shed, ...).
    pub status: u16,
    /// Value of the `Retry-After` header, when present (shed responses carry one).
    pub retry_after_secs: Option<u64>,
    /// Every parsed stream event, in arrival order (empty on non-`200` responses).
    pub events: Vec<WireEvent>,
    /// Nanoseconds from request write to the first token event (time-to-first-token);
    /// `None` when no token arrived.
    pub ttft_ns: Option<u64>,
    /// Nanoseconds between consecutive token events (time-per-output-token samples).
    pub tpot_ns: Vec<u64>,
    /// The generated tokens, in order.
    pub tokens: Vec<u32>,
    /// `true` when the client hung up early (`disconnect_after` triggered) — the stream
    /// is then intentionally incomplete and carries no terminal `done` event.
    pub disconnected: bool,
    /// Body of a non-`200` response (the server's human-readable refusal).
    pub error_body: String,
}

impl StreamResult {
    /// The terminal summary event, when the stream completed.
    pub fn done(&self) -> Option<&WireEvent> {
        self.events
            .iter()
            .find(|e| matches!(e, WireEvent::Done { .. }))
    }
}

/// Errors surfaced by the client helpers.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read or write).
    Io(std::io::Error),
    /// The server's bytes violated HTTP or the wire protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Performs one non-streaming HTTP round trip and returns the parsed response.
///
/// # Errors
///
/// [`ClientError::Io`] on socket failures; [`ClientError::Protocol`] when the server's
/// reply is not a complete HTTP response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: realm\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut parser = ResponseParser::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(response) = parser
            .take_response()
            .map_err(|e| ClientError::Protocol(e.to_string()))?
        {
            return Ok(response);
        }
        match stream.read(&mut buf)? {
            0 => {
                return Err(ClientError::Protocol(
                    "connection closed mid-response".into(),
                ))
            }
            n => parser.feed(&buf[..n]),
        }
    }
}

/// Streams one `/generate` request, parsing token events as chunks arrive.
///
/// When `disconnect_after` is `Some(n)`, the socket is dropped as soon as the `n`-th
/// token event has been parsed — from the server's perspective an abrupt client
/// disconnect mid-stream, which must cancel the request and free its slot.
///
/// # Errors
///
/// [`ClientError::Io`] on socket failures; [`ClientError::Protocol`] on malformed HTTP
/// framing or unparseable stream lines.
pub fn stream_generate(
    addr: SocketAddr,
    body: &GenBody,
    disconnect_after: Option<usize>,
    timeout: Duration,
) -> Result<StreamResult, ClientError> {
    let payload = encode_gen_body(body);
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "POST /generate HTTP/1.1\r\nHost: realm\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    )?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;
    let sent_at = Instant::now();

    // Read just past the response head, then hand the remainder to the chunk decoder.
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let (status, retry_after, body_start) = loop {
        match stream.read(&mut buf)? {
            0 => {
                return Err(ClientError::Protocol(
                    "connection closed before head".into(),
                ))
            }
            n => head.extend_from_slice(&buf[..n]),
        }
        if let Some(end) = find_double_crlf(&head) {
            let (status, retry_after) = parse_head(&head[..end])?;
            break (status, retry_after, end);
        }
        if head.len() > 64 * 1024 {
            return Err(ClientError::Protocol(
                "response head never terminated".into(),
            ));
        }
    };

    let mut result = StreamResult {
        status,
        retry_after_secs: retry_after,
        events: Vec::new(),
        ttft_ns: None,
        tpot_ns: Vec::new(),
        tokens: Vec::new(),
        disconnected: false,
        error_body: String::new(),
    };

    if status != 200 {
        // Refusals close the connection; slurp whatever body follows for diagnostics.
        let mut rest = head[body_start..].to_vec();
        let mut tail = Vec::new();
        let _ = stream.read_to_end(&mut tail);
        rest.extend_from_slice(&tail);
        result.error_body = String::from_utf8_lossy(&rest).into_owned();
        return Ok(result);
    }

    // 200: the body is a chunked stream of newline-terminated wire events.
    let mut decoder = ChunkDecoder::new();
    decoder.feed(&head[body_start..]);
    let mut line_buf = Vec::new();
    let mut last_token_at: Option<Instant> = None;
    'outer: loop {
        while let Some(chunk) = decoder
            .next_chunk()
            .map_err(|e| ClientError::Protocol(e.to_string()))?
        {
            line_buf.extend_from_slice(&chunk);
            // A chunk boundary need not be a line boundary: split on '\n' ourselves.
            while let Some(nl) = line_buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = line_buf.drain(..=nl).collect();
                let line = std::str::from_utf8(&line)
                    .map_err(|_| ClientError::Protocol("stream line is not UTF-8".into()))?;
                let event = parse_event(line).map_err(ClientError::Protocol)?;
                let now = Instant::now();
                if let WireEvent::Token { token, .. } = &event {
                    match last_token_at {
                        None => result.ttft_ns = Some(nanos_since(sent_at, now)),
                        Some(prev) => result.tpot_ns.push(nanos_since(prev, now)),
                    }
                    last_token_at = Some(now);
                    result.tokens.push(*token);
                }
                result.events.push(event);
                if let Some(limit) = disconnect_after {
                    if result.events.len() >= limit {
                        result.disconnected = true;
                        drop(stream); // abrupt hang-up: the server must cancel
                        break 'outer;
                    }
                }
            }
        }
        if decoder.is_done() {
            break;
        }
        match stream.read(&mut buf)? {
            0 => {
                // Server ended the stream without a terminal chunk (engine shutdown).
                break;
            }
            n => decoder.feed(&buf[..n]),
        }
    }
    Ok(result)
}

/// Extracts one `"key":value` integer from the flat `/stats` JSON.
///
/// The stats document is the hand-formatted JSON from the server's
/// `GET /stats` route; this helper spares the tests a JSON parser for what is a flat
/// known-shape object.
pub fn stats_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn nanos_since(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses the status code and `Retry-After` header out of a raw response head.
fn parse_head(head: &[u8]) -> Result<(u16, Option<u64>), ClientError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ClientError::Protocol("response head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line '{status_line}'")))?;
    let retry_after = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, v)| v.trim().parse().ok());
    Ok((status, retry_after))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_field_extracts_flat_integers() {
        let json = "{\"queue_depth\":3,\"requests_shed\":12,\"server\":{\"disconnects\":1}}";
        assert_eq!(stats_field(json, "queue_depth"), Some(3));
        assert_eq!(stats_field(json, "requests_shed"), Some(12));
        assert_eq!(stats_field(json, "disconnects"), Some(1));
        assert_eq!(stats_field(json, "absent"), None);
    }

    #[test]
    fn parse_head_reads_status_and_retry_after() {
        let (status, retry) =
            parse_head(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\n").unwrap();
        assert_eq!(status, 429);
        assert_eq!(retry, Some(7));
        let (status, retry) =
            parse_head(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n").unwrap();
        assert_eq!(status, 200);
        assert_eq!(retry, None);
        assert!(parse_head(b"garbage").is_err());
    }
}
