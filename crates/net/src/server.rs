//! The network front end: a thread-per-connection HTTP/1.1 server over [`ServeEngine`].
//!
//! # Architecture
//!
//! ```text
//!                bounded accept pool                      single engine thread
//!   clients ──▶ TcpListener ──▶ sync_channel(backlog) ──▶ worker 0..N ──┐
//!                  (accept loop)     ▲ blocks when full      │ EngineCmd │ mpsc
//!                                    │ = backpressure        ▼           ▼
//!                                              ServeEngine::submit / step loop
//!                                                 │ mpsc::Receiver<TokenEvent>
//!                                                 ▼
//!                               worker streams chunked token lines to the client
//! ```
//!
//! * **Backpressure** is structural: at most `workers` connections are served at once and
//!   at most `accept_backlog` accepted sockets wait in the hand-off channel; beyond that
//!   the accept loop blocks and further clients queue in the kernel listen backlog.
//! * **Load shedding** happens at admission, on the engine thread: when the oldest queued
//!   request's age in budgeted tokens ([`ServeEngine::oldest_token_age`]) meets the
//!   configured SLO, new requests are refused with `429` + `Retry-After` *before* they
//!   enter the queue — already-queued requests are never dropped, so shedding cannot
//!   starve them. Token age (work the engine did while the request waited) rather than
//!   step age keeps the SLO meaningful under chunked prefill, where a step's cost varies
//!   with [`realm_serve::ServeConfig::step_token_budget`].
//! * **Cancel-on-disconnect** rides the existing channel teardown: a failed chunk write
//!   makes the worker drop its [`TokenEvent`] receiver, the engine's next send fails, and
//!   the slot is released and counted in [`EngineStats::requests_cancelled`].
//! * **Graceful drain** ([`ServerHandle::drain`] or `POST /admin/drain`): the accept loop
//!   stops, new requests get `503`, in-flight streams run to completion, and
//!   [`NetServer::serve`] returns the final [`NetReport`].
//!
//! # Endpoints
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /generate` | stream tokens (chunked); `429` under shed, `503` while draining |
//! | `GET /stats` | JSON snapshot of [`EngineStats`] + server counters |
//! | `GET /healthz` | `200 ok` — `503 draining` once drain began |
//! | `POST /admin/drain` | `202`, triggers graceful drain |

use crate::http::{
    write_chunk, write_final_chunk, write_response, write_stream_head, HttpRequest, RequestParser,
};
use crate::wire::{format_event, parse_gen_body};
use realm_llm::{GemmHook, Model};
use realm_serve::{EngineStats, ServeConfig, ServeEngine, ServeError, TokenEvent};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; use port 0 to let the OS pick (read it back via
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Size of the bounded accept pool: connections served concurrently.
    pub workers: usize,
    /// Accepted sockets that may wait for a free worker before the accept loop blocks.
    pub accept_backlog: usize,
    /// Load-shedding SLO: refuse new requests with `429` once the engine has processed
    /// this many budgeted tokens (decode rows plus prefill-chunk rows) while the oldest
    /// queued request waited. `None` disables shedding.
    pub shed_queue_age_tokens: Option<u64>,
    /// Value of the `Retry-After` header on shed responses, in seconds.
    pub retry_after_secs: u64,
    /// Per-connection socket read timeout (an idle or stalled client frees its worker
    /// after this long).
    pub read_timeout: Duration,
    /// Configuration of the wrapped serving engine.
    pub serve: ServeConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            accept_backlog: 16,
            shed_queue_age_tokens: Some(1024),
            retry_after_secs: 1,
            read_timeout: Duration::from_secs(10),
            serve: ServeConfig::default(),
        }
    }
}

/// Final accounting returned by [`NetServer::serve`] after a graceful drain.
#[derive(Debug, Clone, Copy)]
pub struct NetReport {
    /// The engine's final stats snapshot (includes `requests_shed` and cancellations).
    pub engine: EngineStats,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// HTTP requests parsed (across all routes).
    pub http_requests: u64,
    /// Token streams that ran to completion (terminal chunk delivered).
    pub streams_completed: u64,
    /// Token streams aborted because the client disconnected mid-stream.
    pub disconnects: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    http_requests: AtomicU64,
    streams_completed: AtomicU64,
    disconnects: AtomicU64,
}

/// Cloneable controller for a bound server: address introspection and drain triggering.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    draining: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: stop accepting connections, refuse new requests with
    /// `503`, finish in-flight streams, then return from [`NetServer::serve`].
    ///
    /// Idempotent; safe to call from any thread (including a connection handler).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop if it is blocked in accept(2): a throwaway connection to
        // ourselves makes it observe the flag. Errors are irrelevant (the listener may
        // already be gone).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// Commands the connection workers send to the engine thread.
enum EngineCmd {
    Submit {
        body: crate::wire::GenBody,
        reply: SyncSender<SubmitReply>,
    },
    Stats {
        reply: SyncSender<EngineStats>,
    },
}

/// The engine thread's answer to a submission attempt.
enum SubmitReply {
    Accepted {
        rx: Receiver<TokenEvent>,
    },
    Shed {
        retry_after_secs: u64,
        oldest_age_tokens: u64,
        slo_tokens: u64,
    },
    Rejected {
        detail: String,
    },
    Draining,
}

/// A bound, not-yet-serving network front end.
///
/// [`NetServer::bind`] reserves the socket (so the address is known and a
/// [`ServerHandle`] can be shared before serving begins); [`NetServer::serve`] then runs
/// the accept loop on the calling thread until a drain completes. Scoped threads make the
/// usual pattern ergonomic:
///
/// ```text
/// std::thread::scope(|s| {
///     s.spawn(|| server.serve(&model));
///     // ... drive clients against server.local_addr() ...
///     server.handle().drain();
/// });
/// ```
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    config: NetConfig,
    draining: Arc<AtomicBool>,
    counters: Arc<Counters>,
}

impl NetServer {
    /// Binds the configured address without serving yet.
    ///
    /// # Errors
    ///
    /// Propagates the socket bind error.
    pub fn bind(config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            config,
            draining: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(Counters::default()),
        })
    }

    /// The bound socket address (resolves port 0 to the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A cloneable handle for drain control, usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            draining: Arc::clone(&self.draining),
        }
    }

    /// Serves `model` until a graceful drain completes; equivalent to
    /// [`NetServer::serve_with_hook`] without a fault hook.
    ///
    /// # Errors
    ///
    /// Propagates engine inference errors (unreachable for validated requests).
    pub fn serve(&self, model: &Model) -> Result<NetReport, ServeError> {
        self.serve_with_hook(model, None)
    }

    /// Serves `model`, optionally installing `hook` (typically a `realm-inject`
    /// `ErrorInjector`) ahead of the engine's protector, until a graceful drain
    /// completes. Blocks the calling thread for the server's whole lifetime.
    ///
    /// # Errors
    ///
    /// Propagates engine inference errors (unreachable for validated requests).
    pub fn serve_with_hook(
        &self,
        model: &Model,
        hook: Option<Box<dyn GemmHook + Send>>,
    ) -> Result<NetReport, ServeError> {
        let (cmd_tx, cmd_rx) = mpsc::channel::<EngineCmd>();
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(self.config.accept_backlog.max(1));
        let conn_rx = Mutex::new(conn_rx);
        let engine_stats = std::thread::scope(|s| {
            let engine_thread =
                s.spawn(|| engine_loop(model, &self.config, hook, cmd_rx, &self.draining));
            let workers: Vec<_> = (0..self.config.workers.max(1))
                .map(|_| {
                    let cmd_tx = cmd_tx.clone();
                    let conn_rx = &conn_rx;
                    s.spawn(move || {
                        loop {
                            let next = conn_rx.lock().expect("connection queue lock").recv();
                            match next {
                                Ok(stream) => self.handle_connection(stream, &cmd_tx),
                                Err(_) => break, // accept loop ended and queue drained
                            }
                        }
                    })
                })
                .collect();
            // The workers hold the only remaining command senders: once the accept loop
            // ends and they finish their connections, the engine sees the channel close
            // and exits after its last in-flight request completes.
            drop(cmd_tx);

            for stream in self.listener.incoming() {
                if self.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                self.counters.connections.fetch_add(1, Ordering::Relaxed);
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            drop(conn_tx);
            for worker in workers {
                worker.join().expect("connection worker never panics");
            }
            engine_thread.join().expect("engine thread never panics")
        })?;
        Ok(NetReport {
            engine: engine_stats,
            connections: self.counters.connections.load(Ordering::Relaxed),
            http_requests: self.counters.http_requests.load(Ordering::Relaxed),
            streams_completed: self.counters.streams_completed.load(Ordering::Relaxed),
            disconnects: self.counters.disconnects.load(Ordering::Relaxed),
        })
    }

    /// Serves one connection: keep-alive request loop, routing, streaming.
    fn handle_connection(&self, mut stream: TcpStream, cmd_tx: &Sender<EngineCmd>) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let _ = stream.set_nodelay(true);
        let mut parser = RequestParser::new();
        let mut read_buf = [0u8; 4096];
        loop {
            // Pull the next complete request; pipelined requests already buffered are
            // served without touching the socket again.
            let request = loop {
                match parser.take_request() {
                    Ok(Some(request)) => break request,
                    Ok(None) => match stream.read(&mut read_buf) {
                        Ok(0) => return, // clean EOF between requests
                        Ok(n) => parser.feed(&read_buf[..n]),
                        Err(_) => return, // timeout or reset: free the worker
                    },
                    Err(e) => {
                        let (status, reason) = e.status();
                        let _ = write_response(
                            &mut stream,
                            status,
                            reason,
                            &[("Connection", "close".into())],
                            format!("{e}\n").as_bytes(),
                        );
                        return;
                    }
                }
            };
            self.counters.http_requests.fetch_add(1, Ordering::Relaxed);
            let close = request.wants_close() || self.draining.load(Ordering::SeqCst);
            if self.route(&mut stream, &request, cmd_tx).is_err() {
                return; // socket died mid-response
            }
            if close {
                return;
            }
        }
    }

    /// Dispatches one parsed request to its route handler.
    fn route(
        &self,
        stream: &mut TcpStream,
        request: &HttpRequest,
        cmd_tx: &Sender<EngineCmd>,
    ) -> std::io::Result<()> {
        let path = request.target.split('?').next().unwrap_or("");
        match (request.method.as_str(), path) {
            ("POST", "/generate") => self.route_generate(stream, request, cmd_tx),
            ("GET", "/stats") => self.route_stats(stream, cmd_tx),
            ("GET", "/healthz") => {
                if self.draining.load(Ordering::SeqCst) {
                    write_response(stream, 503, "Service Unavailable", &[], b"draining\n")
                } else {
                    write_response(stream, 200, "OK", &[], b"ok\n")
                }
            }
            ("POST", "/admin/drain") => {
                self.handle().drain();
                write_response(stream, 202, "Accepted", &[], b"draining\n")
            }
            ("POST" | "GET", _) => write_response(
                stream,
                404,
                "Not Found",
                &[],
                b"unknown route (try POST /generate, GET /stats, GET /healthz)\n",
            ),
            _ => write_response(
                stream,
                405,
                "Method Not Allowed",
                &[("Allow", "GET, POST".into())],
                b"method not allowed\n",
            ),
        }
    }

    /// `POST /generate`: submit through the engine thread, then stream the token events
    /// back as chunked lines.
    fn route_generate(
        &self,
        stream: &mut TcpStream,
        request: &HttpRequest,
        cmd_tx: &Sender<EngineCmd>,
    ) -> std::io::Result<()> {
        let Ok(body_str) = std::str::from_utf8(&request.body) else {
            return write_response(stream, 400, "Bad Request", &[], b"body is not UTF-8\n");
        };
        let body = match parse_gen_body(body_str) {
            Ok(body) => body,
            Err(detail) => {
                return write_response(
                    stream,
                    400,
                    "Bad Request",
                    &[],
                    format!("invalid generate body: {detail}\n").as_bytes(),
                )
            }
        };
        if self.draining.load(Ordering::SeqCst) {
            return write_response(stream, 503, "Service Unavailable", &[], b"draining\n");
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if cmd_tx
            .send(EngineCmd::Submit {
                body,
                reply: reply_tx,
            })
            .is_err()
        {
            return write_response(stream, 503, "Service Unavailable", &[], b"engine stopped\n");
        }
        match reply_rx.recv() {
            Ok(SubmitReply::Accepted { rx }) => self.stream_tokens(stream, rx),
            Ok(SubmitReply::Shed {
                retry_after_secs,
                oldest_age_tokens,
                slo_tokens,
            }) => write_response(
                stream,
                429,
                "Too Many Requests",
                &[("Retry-After", retry_after_secs.to_string())],
                format!(
                    "shed: oldest queued request was passed over for {oldest_age_tokens} \
                     budgeted tokens (SLO {slo_tokens}); retry after {retry_after_secs}s\n"
                )
                .as_bytes(),
            ),
            Ok(SubmitReply::Rejected { detail }) => write_response(
                stream,
                400,
                "Bad Request",
                &[],
                format!("{detail}\n").as_bytes(),
            ),
            Ok(SubmitReply::Draining) | Err(_) => {
                write_response(stream, 503, "Service Unavailable", &[], b"draining\n")
            }
        }
    }

    /// Streams a request's token events as one chunk per wire line. A failed write means
    /// the client disconnected: dropping `rx` is the cancellation signal the engine
    /// observes at its next commit.
    fn stream_tokens(
        &self,
        stream: &mut TcpStream,
        rx: Receiver<TokenEvent>,
    ) -> std::io::Result<()> {
        write_stream_head(stream)?;
        for event in rx.iter() {
            let done = matches!(event, TokenEvent::Done(_));
            if let Err(e) = write_chunk(stream, format_event(&event).as_bytes()) {
                // Client went away mid-stream: drop the receiver (cancelling the request
                // at the engine's next commit) and surface the abort in the counters.
                self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                drop(rx);
                return Err(e);
            }
            if done {
                write_final_chunk(stream)?;
                self.counters
                    .streams_completed
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        // The engine dropped the sender without a summary (it is shutting down after an
        // inference error). End the stream cleanly; the client sees a short body.
        write_final_chunk(stream)
    }

    /// `GET /stats`: JSON snapshot of engine stats + server counters.
    fn route_stats(
        &self,
        stream: &mut TcpStream,
        cmd_tx: &Sender<EngineCmd>,
    ) -> std::io::Result<()> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let stats = cmd_tx
            .send(EngineCmd::Stats { reply: reply_tx })
            .ok()
            .and_then(|()| reply_rx.recv().ok());
        match stats {
            Some(stats) => {
                let json = stats_json(&stats, &self.counters, self.draining.load(Ordering::SeqCst));
                let mut head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                    json.len()
                );
                head.push_str(&json);
                use std::io::Write;
                stream.write_all(head.as_bytes())?;
                stream.flush()
            }
            None => write_response(stream, 503, "Service Unavailable", &[], b"engine stopped\n"),
        }
    }
}

/// The engine thread: interleaves command handling (submit/stats) with decode steps.
/// Exits once every command sender is gone and no work remains — which is exactly the
/// graceful-drain condition (accept loop stopped, workers finished, streams delivered).
fn engine_loop(
    model: &Model,
    config: &NetConfig,
    hook: Option<Box<dyn GemmHook + Send>>,
    cmd_rx: Receiver<EngineCmd>,
    draining: &AtomicBool,
) -> Result<EngineStats, ServeError> {
    let mut serve = config.serve;
    // Shed protection before traffic: when the adaptive controller is on but no shed
    // pressure was configured, arm it at 3/4 of the front end's 429 SLO, so resilient
    // protection steps down while requests are still being accepted.
    if serve.adaptive.enabled && serve.adaptive.shed_pressure_tokens == 0 {
        if let Some(slo) = config.shed_queue_age_tokens {
            serve.adaptive.shed_pressure_tokens = (slo.saturating_mul(3) / 4).max(1);
        }
    }
    let mut engine = ServeEngine::new(model, serve);
    if let Some(hook) = hook {
        engine = engine.with_fault_hook(hook);
    }
    let mut senders_live = true;
    loop {
        // Drain all pending commands so a burst of submissions lands in the same
        // admission round.
        while senders_live {
            match cmd_rx.try_recv() {
                Ok(cmd) => handle_cmd(&mut engine, config, draining, cmd),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => senders_live = false,
            }
        }
        if engine.has_work() {
            engine.step()?;
            continue;
        }
        if !senders_live {
            break;
        }
        // Idle: block briefly for the next command instead of spinning.
        match cmd_rx.recv_timeout(Duration::from_millis(2)) {
            Ok(cmd) => handle_cmd(&mut engine, config, draining, cmd),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => senders_live = false,
        }
    }
    Ok(engine.stats())
}

/// Handles one command on the engine thread (the only thread that touches the engine).
fn handle_cmd(
    engine: &mut ServeEngine<'_>,
    config: &NetConfig,
    draining: &AtomicBool,
    cmd: EngineCmd,
) {
    match cmd {
        EngineCmd::Submit { body, reply } => {
            let outcome = if draining.load(Ordering::SeqCst) {
                SubmitReply::Draining
            } else if let (Some(slo), Some(age)) =
                (config.shed_queue_age_tokens, engine.oldest_token_age())
            {
                if age >= slo {
                    engine.note_shed();
                    SubmitReply::Shed {
                        retry_after_secs: config.retry_after_secs,
                        oldest_age_tokens: age,
                        slo_tokens: slo,
                    }
                } else {
                    submit(engine, &body)
                }
            } else {
                submit(engine, &body)
            };
            let _ = reply.send(outcome); // worker may have died with its socket
        }
        EngineCmd::Stats { reply } => {
            let _ = reply.send(engine.stats());
        }
    }
}

fn submit(engine: &mut ServeEngine<'_>, body: &crate::wire::GenBody) -> SubmitReply {
    match engine.submit(body.to_request()) {
        Ok((_, rx)) => SubmitReply::Accepted { rx },
        Err(e) => SubmitReply::Rejected {
            detail: e.to_string(),
        },
    }
}

/// Hand-formatted JSON for `GET /stats` (no serialization dependency on the wire path).
fn stats_json(s: &EngineStats, c: &Counters, draining: bool) -> String {
    format!(
        concat!(
            "{{\"queue_depth\":{},\"active_slots\":{},\"total_slots\":{},\"steps\":{},",
            "\"token_clock\":{},\"prefill_chunks\":{},",
            "\"tokens_generated\":{},\"requests_submitted\":{},\"requests_admitted\":{},",
            "\"requests_completed\":{},\"requests_cancelled\":{},\"requests_shed\":{},",
            "\"queue_oldest_age_steps\":{},\"queue_oldest_age_tokens\":{},",
            "\"detections\":{},\"recoveries\":{},",
            "\"policy_escalations\":{},\"policy_deescalations\":{},",
            "\"protection_shed_steps\":{},",
            "\"steps_at_scheme\":[{},{},{},{},{},{},{}],",
            "\"tokens_per_second\":{:.1},\"decode_p50_us\":{:.1},\"decode_p99_us\":{:.1},",
            "\"decode_stall_p99_us\":{:.1},\"step_budget_utilization\":{:.3},",
            "\"tp_degree\":{},\"server\":{{\"connections\":{},\"http_requests\":{},",
            "\"streams_completed\":{},\"disconnects\":{},\"draining\":{}}}}}\n"
        ),
        s.queue_depth,
        s.active_slots,
        s.total_slots,
        s.steps,
        s.token_clock,
        s.prefill_chunks,
        s.tokens_generated,
        s.requests_submitted,
        s.requests_admitted,
        s.requests_completed,
        s.requests_cancelled,
        s.requests_shed,
        s.queue_oldest_age_steps,
        s.queue_oldest_age_tokens,
        s.detections,
        s.recoveries,
        s.policy_escalations,
        s.policy_deescalations,
        s.protection_shed_steps,
        s.steps_at_scheme[0],
        s.steps_at_scheme[1],
        s.steps_at_scheme[2],
        s.steps_at_scheme[3],
        s.steps_at_scheme[4],
        s.steps_at_scheme[5],
        s.steps_at_scheme[6],
        s.tokens_per_second,
        s.decode_p50_us,
        s.decode_p99_us,
        s.decode_stall_p99_us,
        s.step_budget_utilization,
        s.tp_degree,
        c.connections.load(Ordering::Relaxed),
        c.http_requests.load(Ordering::Relaxed),
        c.streams_completed.load(Ordering::Relaxed),
        c.disconnects.load(Ordering::Relaxed),
        draining
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = NetConfig::default();
        assert!(config.workers >= 1);
        assert!(config.accept_backlog >= 1);
        assert!(config.shed_queue_age_tokens.unwrap() > 0);
        assert_eq!(config.addr, "127.0.0.1:0");
    }

    #[test]
    fn bind_resolves_port_zero_and_handles_share_the_flag() {
        let server = NetServer::bind(NetConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let handle = server.handle();
        assert_eq!(handle.addr(), addr);
        assert!(!handle.is_draining());
        handle.drain();
        assert!(
            handle.is_draining(),
            "drain is visible through every handle"
        );
        assert!(server.handle().is_draining());
    }

    #[test]
    fn stats_json_is_parseable_shape() {
        let server = NetServer::bind(NetConfig::default()).unwrap();
        let model = realm_llm::Model::new(&realm_llm::config::ModelConfig::tiny_opt(), 1).unwrap();
        let engine = ServeEngine::new(&model, ServeConfig::with_slots(1));
        let json = stats_json(&engine.stats(), &server.counters, false);
        assert!(json.contains("\"queue_depth\":0"));
        assert!(json.contains("\"requests_shed\":0"));
        assert!(json.contains("\"queue_oldest_age_tokens\":0"));
        assert!(json.contains("\"token_clock\":0"));
        assert!(json.contains("\"prefill_chunks\":0"));
        assert!(json.contains("\"decode_stall_p99_us\":0.0"));
        assert!(json.contains("\"step_budget_utilization\":0.000"));
        assert!(json.contains("\"policy_escalations\":0"));
        assert!(json.contains("\"policy_deescalations\":0"));
        assert!(json.contains("\"protection_shed_steps\":0"));
        assert!(json.contains("\"steps_at_scheme\":[0,0,0,0,0,0,0]"));
        assert!(json.contains("\"draining\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
