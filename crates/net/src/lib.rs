//! `realm-net`: a dependency-free network front end for the ReaLM serving engine, plus
//! the trace-driven load generator that benchmarks it.
//!
//! Everything is built on `std::net` — no async runtime, no HTTP library:
//!
//! * [`http`] — incremental HTTP/1.1 request/response parsing, chunked
//!   transfer-encoding, and the response writers the server streams tokens through.
//! * [`wire`] — the application protocol: the `/generate` form body and the
//!   newline-framed token stream (margins as raw `f32` bits, so conformance tests can
//!   assert bit-identity with in-process generation).
//! * [`server`] — [`NetServer`]: thread-per-connection serving with a bounded accept
//!   pool, load shedding against a queue-age SLO (`429` + `Retry-After`),
//!   cancel-on-disconnect via [`realm_serve::TokenEvent`] channel teardown, and graceful
//!   drain.
//! * [`client`] — a blocking client ([`stream_generate`], [`http_request`]) used by the
//!   tests and the load harness.
//! * [`trace`] — seeded bounded-Pareto arrival schedules over mixed
//!   prompt/budget/priority/policy workloads ([`generate_trace`]).
//! * [`loadgen`] — open-loop trace replay with TTFT/TPOT/shed-rate accounting
//!   ([`run_trace`]).
//!
//! # Example
//!
//! Serve a model over loopback, stream one request, then drain:
//!
//! ```
//! use realm_llm::{config::ModelConfig, Model};
//! use realm_net::{stream_generate, GenBody, NetConfig, NetServer};
//! use std::time::Duration;
//!
//! let model = Model::new(&ModelConfig::tiny_opt(), 1).unwrap();
//! let server = NetServer::bind(NetConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::scope(|s| {
//!     let serving = s.spawn(|| server.serve(&model).unwrap());
//!     let body = GenBody {
//!         prompt: vec![1, 5, 9],
//!         max_new_tokens: 4,
//!         priority: 0,
//!         policy: Default::default(),
//!     };
//!     let result = stream_generate(addr, &body, None, Duration::from_secs(10)).unwrap();
//!     assert_eq!(result.status, 200);
//!     assert_eq!(result.tokens.len(), 4);
//!     handle.drain();
//!     let report = serving.join().unwrap();
//!     assert_eq!(report.engine.requests_completed, 1);
//! });
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod trace;
pub mod wire;

pub use client::{http_request, stream_generate, ClientError, StreamResult};
pub use loadgen::{run_trace, LoadOptions, LoadReport, RequestOutcome};
pub use server::{NetConfig, NetReport, NetServer, ServerHandle};
pub use trace::{generate_trace, BoundedPareto, TraceConfig, TraceRequest};
pub use wire::{encode_gen_body, parse_event, parse_gen_body, GenBody, WireEvent};
