//! Open-loop trace replay against a running front end, with latency accounting.
//!
//! [`run_trace`] replays a [`TraceRequest`] schedule over loopback: one thread per
//! request sleeps until its arrival offset, then streams `/generate` and timestamps
//! every token. Arrival times are **open-loop** — a slow server does not slow the
//! arrival process down, so queueing and shedding behave like production ingress.
//!
//! The resulting [`LoadReport`] carries the serving-paper metrics: TTFT and TPOT
//! p50/p99, shed rate, and the per-request ABFT detection/recovery attribution summed
//! over the completed requests.

use crate::client::{stream_generate, ClientError, StreamResult};
use crate::trace::TraceRequest;
use crate::wire::WireEvent;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Options controlling one trace replay.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Disconnect request `index` after `events` parsed stream events (exercises
    /// cancel-on-disconnect under load). `None` replays the trace faithfully.
    pub disconnect: Option<(usize, usize)>,
    /// Multiplier on arrival offsets (2.0 = replay at half speed).
    pub time_scale: f64,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            disconnect: None,
            time_scale: 1.0,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome of one replayed request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Index of the request in the trace.
    pub index: usize,
    /// Scheduled arrival offset in microseconds.
    pub arrival_us: u64,
    /// HTTP status (`200` accepted, `429` shed, `503` draining, 0 on transport error).
    pub status: u16,
    /// Time to first token in nanoseconds (completed requests only).
    pub ttft_ns: Option<u64>,
    /// Inter-token gaps in nanoseconds.
    pub tpot_ns: Vec<u64>,
    /// Generated tokens.
    pub tokens: Vec<u32>,
    /// ABFT detections charged to this request (from the terminal `done` line).
    pub detections: u64,
    /// ABFT recoveries charged to this request (from the terminal `done` line).
    pub recoveries: u64,
    /// `true` when this client hung up early on purpose.
    pub disconnected: bool,
    /// Transport-level failure, if any.
    pub error: Option<String>,
}

/// Aggregated metrics of one trace replay.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-request outcomes in trace order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that streamed to completion (terminal `done` event received).
    pub completed: usize,
    /// Requests refused with `429` (load shedding).
    pub shed: usize,
    /// Requests that deliberately disconnected mid-stream.
    pub disconnected: usize,
    /// Requests that failed at the transport level.
    pub errors: usize,
    /// Time-to-first-token percentiles in nanoseconds: `(p50, p99)`.
    pub ttft_ns: (u64, u64),
    /// Time-per-output-token percentiles in nanoseconds: `(p50, p99)`.
    pub tpot_ns: (u64, u64),
    /// Shed requests over total requests.
    pub shed_rate: f64,
    /// Total ABFT detections attributed across completed requests.
    pub detections: u64,
    /// Total ABFT recoveries attributed across completed requests.
    pub recoveries: u64,
}

impl LoadReport {
    /// Human-readable one-line-per-metric summary.
    pub fn summary_lines(&self) -> Vec<String> {
        vec![
            format!(
                "requests: {} completed, {} shed, {} disconnected, {} errors",
                self.completed, self.shed, self.disconnected, self.errors
            ),
            format!(
                "ttft_ns: p50 {} p99 {}  tpot_ns: p50 {} p99 {}",
                self.ttft_ns.0, self.ttft_ns.1, self.tpot_ns.0, self.tpot_ns.1
            ),
            format!(
                "shed_rate: {:.3}  detections: {}  recoveries: {}",
                self.shed_rate, self.detections, self.recoveries
            ),
        ]
    }
}

/// Replays `trace` against `addr` and aggregates the outcome.
///
/// Blocks until every request's stream ended (or failed). The server is expected to be
/// serving already; requests that cannot connect are reported as errors, not panics.
pub fn run_trace(addr: SocketAddr, trace: &[TraceRequest], options: &LoadOptions) -> LoadReport {
    let outcomes = Mutex::new(Vec::with_capacity(trace.len()));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (index, request) in trace.iter().enumerate() {
            let outcomes = &outcomes;
            let options_ref = options;
            s.spawn(move || {
                let arrival = Duration::from_micros(
                    (request.arrival_us as f64 * options_ref.time_scale) as u64,
                );
                if let Some(wait) = arrival.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let disconnect_after = match options_ref.disconnect {
                    Some((i, events)) if i == index => Some(events),
                    _ => None,
                };
                let outcome = match stream_generate(
                    addr,
                    &request.body,
                    disconnect_after,
                    options_ref.timeout,
                ) {
                    Ok(result) => outcome_from_stream(index, request.arrival_us, &result),
                    Err(e) => error_outcome(index, request.arrival_us, &e),
                };
                outcomes
                    .lock()
                    .expect("outcome collection lock")
                    .push(outcome);
            });
        }
    });
    let mut outcomes = outcomes.into_inner().expect("outcome collection lock");
    outcomes.sort_by_key(|o| o.index);
    aggregate(outcomes)
}

fn outcome_from_stream(index: usize, arrival_us: u64, result: &StreamResult) -> RequestOutcome {
    let (detections, recoveries) = result
        .events
        .iter()
        .find_map(|e| match e {
            WireEvent::Done {
                detections,
                recoveries,
                ..
            } => Some((*detections, *recoveries)),
            _ => None,
        })
        .unwrap_or((0, 0));
    RequestOutcome {
        index,
        arrival_us,
        status: result.status,
        ttft_ns: result.ttft_ns,
        tpot_ns: result.tpot_ns.clone(),
        tokens: result.tokens.clone(),
        detections,
        recoveries,
        disconnected: result.disconnected,
        error: None,
    }
}

fn error_outcome(index: usize, arrival_us: u64, error: &ClientError) -> RequestOutcome {
    RequestOutcome {
        index,
        arrival_us,
        status: 0,
        ttft_ns: None,
        tpot_ns: Vec::new(),
        tokens: Vec::new(),
        detections: 0,
        recoveries: 0,
        disconnected: false,
        error: Some(error.to_string()),
    }
}

fn aggregate(outcomes: Vec<RequestOutcome>) -> LoadReport {
    let total = outcomes.len().max(1);
    let completed = outcomes
        .iter()
        .filter(|o| o.status == 200 && !o.disconnected && o.error.is_none())
        .count();
    let shed = outcomes.iter().filter(|o| o.status == 429).count();
    let disconnected = outcomes.iter().filter(|o| o.disconnected).count();
    let errors = outcomes.iter().filter(|o| o.error.is_some()).count();
    let mut ttft: Vec<u64> = outcomes.iter().filter_map(|o| o.ttft_ns).collect();
    let mut tpot: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.tpot_ns.iter().copied())
        .collect();
    ttft.sort_unstable();
    tpot.sort_unstable();
    LoadReport {
        completed,
        shed,
        disconnected,
        errors,
        ttft_ns: (percentile(&ttft, 0.50), percentile(&ttft, 0.99)),
        tpot_ns: (percentile(&tpot, 0.50), percentile(&tpot, 0.99)),
        shed_rate: shed as f64 / total as f64,
        detections: outcomes.iter().map(|o| o.detections).sum(),
        recoveries: outcomes.iter().map(|o| o.recoveries).sum(),
        outcomes,
    }
}

/// Nearest-rank percentile over an ascending-sorted sample (0 for an empty sample).
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 51, "(99 * 0.5).round() = 50 -> v[50]");
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn aggregate_classifies_outcomes() {
        let ok = RequestOutcome {
            index: 0,
            arrival_us: 0,
            status: 200,
            ttft_ns: Some(100),
            tpot_ns: vec![10, 20],
            tokens: vec![1, 2, 3],
            detections: 2,
            recoveries: 1,
            disconnected: false,
            error: None,
        };
        let shed = RequestOutcome {
            index: 1,
            status: 429,
            ttft_ns: None,
            tpot_ns: vec![],
            tokens: vec![],
            detections: 0,
            recoveries: 0,
            ..ok.clone()
        };
        let hung_up = RequestOutcome {
            index: 2,
            disconnected: true,
            ..ok.clone()
        };
        let failed = RequestOutcome {
            index: 3,
            status: 0,
            error: Some("connection refused".into()),
            ..shed.clone()
        };
        let report = aggregate(vec![ok, shed, hung_up, failed]);
        assert_eq!(report.completed, 1);
        assert_eq!(report.shed, 1);
        assert_eq!(report.disconnected, 1);
        assert_eq!(report.errors, 1);
        assert!((report.shed_rate - 0.25).abs() < 1e-9);
        assert_eq!(
            report.detections, 4,
            "both streams with done-attribution count"
        );
        assert_eq!(report.ttft_ns.0, 100);
    }
}
