//! Hand-rolled HTTP/1.1 framing: incremental request/response parsers and chunked
//! transfer encoding, on nothing but `std`.
//!
//! Both parsers are *incremental*: bytes arrive via [`RequestParser::feed`] /
//! [`ResponseParser::feed`] in whatever fragments the socket produced — a header split
//! across two `read()`s, three pipelined requests in one segment — and `take_*` yields a
//! message only once it is complete, leaving any following bytes buffered for the next
//! call. That property (parse output independent of read segmentation) is what the
//! property tests in `tests/net_protocol.rs` pin down.
//!
//! Limits are enforced while buffering, not after: a client cannot make the server buffer
//! more than [`MAX_HEADER_BYTES`] of headers or announce more than [`MAX_BODY_BYTES`] of
//! body. Violations surface as typed [`HttpError`]s that map onto response status codes.

use std::io::{self, Write};

/// Maximum bytes of request line + headers the server will buffer before answering 431.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Maximum request body size the server will accept before answering 413.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Protocol violations detected while parsing, each mapping to one response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes are not a well-formed HTTP/1.x message (400).
    Malformed(String),
    /// The request line + headers exceed [`MAX_HEADER_BYTES`] (431).
    HeadersTooLarge,
    /// The announced body exceeds [`MAX_BODY_BYTES`] (413).
    BodyTooLarge,
    /// The message names an HTTP version other than 1.0/1.1 (505).
    UnsupportedVersion(String),
}

impl HttpError {
    /// The response status code and reason phrase this error maps to.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Content Too Large"),
            HttpError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed HTTP message: {detail}"),
            HttpError::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version '{v}'"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target (`/generate`, `/stats?x=1`, ...).
    pub target: String,
    /// Protocol version (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// Header name/value pairs in arrival order (names as sent; lookup is case-insensitive).
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup returning the first matching value.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked to close the connection after this exchange
    /// (`Connection: close`, or HTTP/1.0 without `Connection: keep-alive`).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.version == "HTTP/1.0",
        }
    }
}

/// Incremental request parser for one connection.
///
/// Feed whatever the socket yielded, then call [`RequestParser::take_request`] until it
/// returns `Ok(None)` (needs more bytes). Pipelined requests are handled naturally: each
/// `take_request` consumes exactly one message and leaves the rest buffered.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `bytes` to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts one complete request from the front of the buffer.
    ///
    /// Returns `Ok(None)` when the buffered bytes are a valid *prefix* of a request
    /// (truncated header or body) — feed more and retry.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] as soon as the buffered prefix cannot be a valid request;
    /// the connection should answer with [`HttpError::status`] and close.
    pub fn take_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let Some(header_end) = find_double_crlf(&self.buf) else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| HttpError::Malformed("header bytes are not UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = parse_header_lines(lines)?;
        let header_view = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        if header_view("transfer-encoding").is_some() {
            // The server streams chunked *responses* but deliberately refuses chunked
            // request bodies: every client in this workspace sends Content-Length, and
            // rejecting the unused path keeps the request parser small enough to test
            // exhaustively.
            return Err(HttpError::Malformed(
                "chunked request bodies are not supported; send Content-Length".into(),
            ));
        }
        let body_len = match header_view("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("invalid Content-Length '{v}'")))?,
        };
        if body_len > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        let total = header_end + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None); // body still in flight
        }
        let body = self.buf[header_end + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(HttpRequest {
            method,
            target,
            version,
            headers,
            body,
        }))
    }
}

/// One parsed HTTP response (body fully reassembled, chunked or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase as sent.
    pub reason: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The reassembled body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup returning the first matching value.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental response parser (client side), reassembling chunked bodies.
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: Vec<u8>,
}

impl ResponseParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `bytes` to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts one complete response from the front of the buffer, reassembling a
    /// chunked body into contiguous bytes. Returns `Ok(None)` while incomplete.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] when the buffered prefix cannot be a valid response.
    pub fn take_response(&mut self) -> Result<Option<HttpResponse>, HttpError> {
        let Some(header_end) = find_double_crlf(&self.buf) else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| HttpError::Malformed("header bytes are not UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let (status, reason) = parse_status_line(status_line)?;
        let headers = parse_header_lines(lines)?;
        let header_view = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        let chunked =
            header_view("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let body_start = header_end + 4;
        if chunked {
            let mut decoder = ChunkDecoder::new();
            decoder.feed(&self.buf[body_start..]);
            let mut body = Vec::new();
            while let Some(chunk) = decoder.next_chunk()? {
                body.extend_from_slice(&chunk);
            }
            if !decoder.is_done() {
                return Ok(None); // terminal chunk still in flight
            }
            let consumed = body_start + decoder.consumed();
            self.buf.drain(..consumed);
            return Ok(Some(HttpResponse {
                status,
                reason,
                headers,
                body,
            }));
        }
        let body_len = match header_view("content-length") {
            None => 0,
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("invalid Content-Length '{v}'")))?,
        };
        let total = body_start + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[body_start..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(HttpResponse {
            status,
            reason,
            headers,
            body,
        }))
    }
}

/// Incremental decoder for a `Transfer-Encoding: chunked` stream.
///
/// Unlike [`ResponseParser::take_response`] (which waits for the whole body), this yields
/// each chunk as soon as its framing is complete — the primitive the streaming client uses
/// to timestamp tokens as they arrive.
#[derive(Debug, Default)]
pub struct ChunkDecoder {
    buf: Vec<u8>,
    pos: usize,
    done: bool,
}

impl ChunkDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` once the terminal (size-0) chunk has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Total stream bytes consumed so far (framing included) — lets a caller that fed
    /// more than one message know where this chunked body ended.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Yields the next complete chunk payload, `Ok(None)` when more bytes are needed or
    /// the stream already ended ([`ChunkDecoder::is_done`] disambiguates).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] on invalid chunk framing.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        loop {
            if self.done {
                return Ok(None);
            }
            let rest = &self.buf[self.pos..];
            let Some(line_end) = find_crlf(rest) else {
                return Ok(None);
            };
            let size_line = std::str::from_utf8(&rest[..line_end])
                .map_err(|_| HttpError::Malformed("chunk size line is not UTF-8".into()))?;
            // Ignore chunk extensions (";..." after the size).
            let size_str = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_str, 16)
                .map_err(|_| HttpError::Malformed(format!("invalid chunk size '{size_str}'")))?;
            let chunk_start = line_end + 2;
            let chunk_total = chunk_start + size + 2; // payload + trailing CRLF
            if rest.len() < chunk_total {
                return Ok(None);
            }
            if &rest[chunk_start + size..chunk_total] != b"\r\n" {
                return Err(HttpError::Malformed(
                    "chunk payload is not followed by CRLF".into(),
                ));
            }
            let payload = rest[chunk_start..chunk_start + size].to_vec();
            self.pos += chunk_total;
            if size == 0 {
                self.done = true;
                return Ok(None);
            }
            if payload.is_empty() {
                continue; // unreachable (size==0 handled), defensive
            }
            return Ok(Some(payload));
        }
    }
}

/// Writes a complete non-streaming response with `Content-Length` framing.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the status line + headers opening a chunked streaming response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_stream_head(w: &mut impl Write) -> io::Result<()> {
    w.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
          Transfer-Encoding: chunked\r\n\r\n",
    )?;
    w.flush()
}

/// Writes one chunk of a chunked response and flushes so the client sees it immediately.
///
/// # Errors
///
/// Propagates socket write errors (a failure here is how client disconnects are noticed).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Writes the terminal size-0 chunk that ends a chunked response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_final_chunk(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Byte offset of the first `\r\n\r\n`, i.e. the end of the header block (exclusive).
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Byte offset of the first `\r\n`.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String, String), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "request line '{line}' is not 'METHOD TARGET VERSION'"
        )));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!(
            "invalid method '{method}' in request line"
        )));
    }
    if !(target.starts_with('/') || target == "*") {
        return Err(HttpError::Malformed(format!(
            "invalid request target '{target}'"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.into()));
    }
    Ok((method.into(), target.into(), version.into()))
}

fn parse_status_line(line: &str) -> Result<(u16, String), HttpError> {
    let mut parts = line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(HttpError::Malformed(format!(
            "status line '{line}' is not 'VERSION CODE REASON'"
        )));
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.into()));
    }
    let status = code
        .parse::<u16>()
        .map_err(|_| HttpError::Malformed(format!("invalid status code '{code}'")))?;
    Ok((status, parts.next().unwrap_or("").to_string()))
}

fn parse_header_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header line '{line}' has no ':'"
            )));
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!(
                "invalid header name in '{line}'"
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_request() -> Vec<u8> {
        b"POST /generate HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello".to_vec()
    }

    #[test]
    fn parses_a_complete_request() {
        let mut p = RequestParser::new();
        p.feed(&simple_request());
        let r = p.take_request().unwrap().expect("complete");
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/generate");
        assert_eq!(r.version, "HTTP/1.1");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert_eq!(r.body, b"hello");
        assert_eq!(p.buffered(), 0);
        assert!(p.take_request().unwrap().is_none());
    }

    #[test]
    fn byte_at_a_time_feeding_parses_identically() {
        let bytes = simple_request();
        let mut p = RequestParser::new();
        let mut got = None;
        for &b in &bytes {
            p.feed(&[b]);
            if let Some(r) = p.take_request().unwrap() {
                got = Some(r);
            }
        }
        let r = got.expect("parsed at the final byte");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn connection_semantics() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(p.take_request().unwrap().unwrap().wants_close());
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert!(!p.take_request().unwrap().unwrap().wants_close());
        p.feed(b"GET / HTTP/1.0\r\n\r\n");
        assert!(p.take_request().unwrap().unwrap().wants_close());
        p.feed(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!p.take_request().unwrap().unwrap().wants_close());
    }

    #[test]
    fn rejects_protocol_violations() {
        for (bytes, want_status) in [
            (&b"BAD\r\n\r\n"[..], 400),
            (&b"GET /\r\n\r\n"[..], 400),
            (&b"get / HTTP/1.1\r\n\r\n"[..], 400),
            (&b"GET nope HTTP/1.1\r\n\r\n"[..], 400),
            (&b"GET / HTTP/2.0\r\n\r\n"[..], 505),
            (&b"GET / HTTP/1.1\r\nBroken header\r\n\r\n"[..], 400),
            (&b"GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n"[..], 400),
            (
                &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
                400,
            ),
        ] {
            let mut p = RequestParser::new();
            p.feed(bytes);
            let err = p.take_request().expect_err("must reject");
            assert_eq!(
                err.status().0,
                want_status,
                "wrong status for {:?}: {err}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn enforces_header_and_body_limits() {
        let mut p = RequestParser::new();
        p.feed(&vec![b'a'; MAX_HEADER_BYTES + 1]);
        assert_eq!(p.take_request().unwrap_err(), HttpError::HeadersTooLarge);

        let mut p = RequestParser::new();
        p.feed(
            format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert_eq!(p.take_request().unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn chunk_decoder_reassembles_and_terminates() {
        let mut d = ChunkDecoder::new();
        d.feed(b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
        assert_eq!(d.next_chunk().unwrap().unwrap(), b"hello");
        assert!(!d.is_done());
        assert_eq!(d.next_chunk().unwrap().unwrap(), b" world");
        assert!(d.next_chunk().unwrap().is_none());
        assert!(d.is_done());
        assert_eq!(
            d.consumed(),
            b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n".len()
        );
    }

    #[test]
    fn response_parser_handles_chunked_and_content_length() {
        let mut p = ResponseParser::new();
        p.feed(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n");
        let r = p.take_response().unwrap().unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"abc");
        p.feed(
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: 4\r\n\r\nshed",
        );
        let r = p.take_response().unwrap().unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.body, b"shed");
    }

    #[test]
    fn writers_produce_parseable_output() {
        let mut out = Vec::new();
        write_stream_head(&mut out).unwrap();
        write_chunk(&mut out, b"t 0 5 3f800000\n").unwrap();
        write_final_chunk(&mut out).unwrap();
        let mut p = ResponseParser::new();
        p.feed(&out);
        let r = p.take_response().unwrap().unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"t 0 5 3f800000\n");

        let mut out = Vec::new();
        write_response(&mut out, 404, "Not Found", &[], b"nope\n").unwrap();
        let mut p = ResponseParser::new();
        p.feed(&out);
        let r = p.take_response().unwrap().unwrap();
        assert_eq!((r.status, r.body.as_slice()), (404, &b"nope\n"[..]));
    }
}
