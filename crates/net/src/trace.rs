//! Deterministic trace generation for the load harness: seeded bounded-Pareto
//! interarrival times and a mixed prompt/budget/priority/policy workload.
//!
//! Everything is a pure function of [`TraceConfig`] — the same config (same seed)
//! reproduces the identical trace on every run and platform, which is what lets the
//! load-harness numbers in `BENCH_gemm.json` be compared across commits.

use crate::wire::GenBody;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use realm_core::protection::ProtectionPolicy;

/// A bounded (truncated) Pareto distribution over `[scale, cap]`.
///
/// Heavy-tailed interarrival gaps are the standard model for open-loop LLM serving
/// traffic: most gaps are short (bursts), a few are long (lulls). The bound keeps a
/// single sample from stalling a finite benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Minimum value (the Pareto scale `L`).
    pub scale: f64,
    /// Tail index `alpha` (smaller = heavier tail). Must not be 1.0 exactly.
    pub shape: f64,
    /// Maximum value (the truncation point `H`).
    pub cap: f64,
}

impl BoundedPareto {
    /// Draws one sample via the inverse CDF:
    /// `x = L * (1 - u*(1 - (L/H)^a))^(-1/a)` for uniform `u` in `[0, 1)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (l, a, h) = (self.scale, self.shape, self.cap);
        let u: f64 = rng.gen();
        let ratio = (l / h).powf(a);
        l * (1.0 - u * (1.0 - ratio)).powf(-1.0 / a)
    }

    /// Analytic mean of the bounded distribution (used to rescale samples so a trace
    /// hits a requested mean interarrival gap exactly in expectation).
    pub fn mean(&self) -> f64 {
        let (l, a, h) = (self.scale, self.shape, self.cap);
        let la = l.powf(a);
        let denom = 1.0 - (l / h).powf(a);
        la / denom * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }
}

/// Configuration of one generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Seed for the ChaCha8 stream; the trace is a pure function of this config.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Target mean interarrival gap in microseconds (samples are rescaled to hit this).
    pub mean_interarrival_us: f64,
    /// Pareto tail index for interarrival gaps (1.5 = markedly bursty).
    pub pareto_shape: f64,
    /// Truncation point as a multiple of the scale (caps the longest lull).
    pub pareto_cap_ratio: f64,
    /// Inclusive range of prompt lengths in tokens (the short mode of the mix).
    pub prompt_len: (usize, usize),
    /// Per-mille probability that a request draws its prompt length from
    /// [`long_prompt_len`](Self::long_prompt_len) instead of
    /// [`prompt_len`](Self::prompt_len). `0` (the default) keeps the mix unimodal —
    /// and, deliberately, byte-identical to traces generated before the bimodal mode
    /// existed: the long/short coin is only flipped when the weight is non-zero, so
    /// the RNG stream of legacy configs is untouched.
    pub long_prompt_permille: u32,
    /// Inclusive prompt-length range of the long mode. Long prompts are what make
    /// head-of-line blocking observable: without chunked prefill, one of these parks
    /// every concurrent decode stream for a full monolithic prefill.
    pub long_prompt_len: (usize, usize),
    /// Inclusive range of generation budgets in tokens.
    pub max_new_tokens: (usize, usize),
    /// Vocabulary size prompts are drawn from (tokens are `0..vocab`).
    pub vocab: u32,
    /// Weighted priority levels: `(priority, weight)`.
    pub priorities: Vec<(u8, u32)>,
    /// Weighted protection policies: `(policy, weight)`.
    pub policies: Vec<(ProtectionPolicy, u32)>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 2025,
            requests: 50,
            mean_interarrival_us: 2_000.0,
            pareto_shape: 1.5,
            pareto_cap_ratio: 50.0,
            prompt_len: (2, 8),
            long_prompt_permille: 0,
            long_prompt_len: (256, 512),
            max_new_tokens: (2, 8),
            vocab: 64,
            priorities: vec![(0, 6), (3, 3), (7, 1)],
            policies: vec![
                (ProtectionPolicy::statistical(), 6),
                (ProtectionPolicy::classical(), 2),
                (ProtectionPolicy::unprotected(), 2),
            ],
        }
    }
}

/// One scheduled request of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRequest {
    /// Arrival offset from trace start, in microseconds.
    pub arrival_us: u64,
    /// The request body to send.
    pub body: GenBody,
}

/// Generates the deterministic trace described by `config`.
///
/// # Panics
///
/// Panics when the config is degenerate (empty ranges, no weighted choices, a Pareto
/// shape of exactly 1.0) — load-harness configs are written by hand and should fail
/// loudly.
pub fn generate_trace(config: &TraceConfig) -> Vec<TraceRequest> {
    assert!(config.prompt_len.0 >= 1 && config.prompt_len.0 <= config.prompt_len.1);
    assert!(config.long_prompt_permille <= 1000);
    if config.long_prompt_permille > 0 {
        assert!(
            config.long_prompt_len.0 >= 1 && config.long_prompt_len.0 <= config.long_prompt_len.1
        );
    }
    assert!(config.max_new_tokens.0 >= 1 && config.max_new_tokens.0 <= config.max_new_tokens.1);
    assert!(config.vocab >= 1);
    assert!(
        (config.pareto_shape - 1.0).abs() > 1e-9,
        "shape 1.0 has no closed-form mean"
    );
    assert!(config.pareto_cap_ratio > 1.0);
    assert!(!config.priorities.is_empty() && !config.policies.is_empty());

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Scale the unit-scale Pareto so the analytic mean equals the requested gap.
    let gap = BoundedPareto {
        scale: 1.0,
        shape: config.pareto_shape,
        cap: config.pareto_cap_ratio,
    };
    let rescale = config.mean_interarrival_us / gap.mean();

    let mut arrival = 0.0f64;
    (0..config.requests)
        .map(|_| {
            arrival += gap.sample(&mut rng) * rescale;
            // The bimodal coin is only flipped when long prompts are enabled, so legacy
            // (unimodal) configs reproduce their historical RNG stream exactly.
            let (len_lo, len_hi) = if config.long_prompt_permille > 0
                && rng.gen_range(0..1000) < config.long_prompt_permille
            {
                config.long_prompt_len
            } else {
                config.prompt_len
            };
            let prompt_len = rng.gen_range(len_lo..=len_hi);
            let prompt = (0..prompt_len)
                .map(|_| rng.gen_range(0..config.vocab))
                .collect();
            let max_new_tokens = rng.gen_range(config.max_new_tokens.0..=config.max_new_tokens.1);
            let priority = weighted_pick(&mut rng, &config.priorities);
            let policy = weighted_pick(&mut rng, &config.policies);
            TraceRequest {
                arrival_us: arrival as u64,
                body: GenBody {
                    prompt,
                    max_new_tokens,
                    priority,
                    policy,
                },
            }
        })
        .collect()
}

/// Picks one value from a weighted list (weights need not be normalised).
fn weighted_pick<T: Copy, R: Rng + ?Sized>(rng: &mut R, choices: &[(T, u32)]) -> T {
    let total: u32 = choices.iter().map(|(_, w)| w).sum();
    assert!(total > 0, "weighted choice needs a positive total weight");
    let mut draw = rng.gen_range(0..total);
    for (value, weight) in choices {
        if draw < *weight {
            return *value;
        }
        draw -= weight;
    }
    choices[choices.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_pareto_respects_bounds_and_mean() {
        let dist = BoundedPareto {
            scale: 1.0,
            shape: 1.5,
            cap: 50.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!(
                (dist.scale..=dist.cap).contains(&x),
                "sample {x} out of bounds"
            );
            sum += x;
        }
        let empirical = sum / n as f64;
        let analytic = dist.mean();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical mean {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let config = TraceConfig::default();
        let a = generate_trace(&config);
        let b = generate_trace(&config);
        assert_eq!(a, b, "same seed must reproduce the identical trace");
        let different = generate_trace(&TraceConfig {
            seed: config.seed + 1,
            ..config.clone()
        });
        assert_ne!(a, different, "a different seed must change the trace");
    }

    #[test]
    fn traces_honour_ranges_and_mix() {
        let config = TraceConfig {
            requests: 200,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&config);
        assert_eq!(trace.len(), 200);
        let mut last_arrival = 0;
        let mut saw_nonzero_priority = false;
        let mut saw_non_default_policy = false;
        for request in &trace {
            assert!(request.arrival_us >= last_arrival, "arrivals are monotone");
            last_arrival = request.arrival_us;
            let len = request.body.prompt.len();
            assert!((config.prompt_len.0..=config.prompt_len.1).contains(&len));
            assert!((config.max_new_tokens.0..=config.max_new_tokens.1)
                .contains(&request.body.max_new_tokens));
            assert!(request.body.prompt.iter().all(|&t| t < config.vocab));
            saw_nonzero_priority |= request.body.priority > 0;
            saw_non_default_policy |= request.body.policy != ProtectionPolicy::statistical();
        }
        assert!(
            saw_nonzero_priority,
            "the weighted mix produces elevated priorities"
        );
        assert!(
            saw_non_default_policy,
            "the weighted mix produces non-default policies"
        );
    }

    #[test]
    fn bimodal_mix_produces_both_modes_and_stays_deterministic() {
        let config = TraceConfig {
            requests: 400,
            long_prompt_permille: 200,
            long_prompt_len: (64, 96),
            ..TraceConfig::default()
        };
        let trace = generate_trace(&config);
        let long = trace
            .iter()
            .filter(|r| (64..=96).contains(&r.body.prompt.len()))
            .count();
        let short = trace
            .iter()
            .filter(|r| (2..=8).contains(&r.body.prompt.len()))
            .count();
        assert_eq!(long + short, 400, "every prompt falls in one of the modes");
        // 200 permille of 400 requests: expect ~80 long prompts; a wide tolerance keeps
        // the check seed-robust while still proving both modes are live.
        assert!(
            (40..=140).contains(&long),
            "long-prompt mode should claim roughly a fifth of the mix, got {long}"
        );
        assert_eq!(
            trace,
            generate_trace(&config),
            "the bimodal trace is still a pure function of its config"
        );
        // Enabling the mix must not perturb the legacy unimodal stream.
        let legacy = generate_trace(&TraceConfig::default());
        let legacy_again = generate_trace(&TraceConfig {
            long_prompt_len: (999, 1000), // ignored while permille is 0
            ..TraceConfig::default()
        });
        assert_eq!(legacy, legacy_again);
    }

    #[test]
    fn mean_interarrival_lands_near_target() {
        let config = TraceConfig {
            requests: 2_000,
            mean_interarrival_us: 500.0,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&config);
        let total = trace.last().unwrap().arrival_us as f64;
        let mean = total / trace.len() as f64;
        assert!(
            (mean - 500.0).abs() / 500.0 < 0.15,
            "rescaled mean gap {mean} should sit near 500us"
        );
    }
}
