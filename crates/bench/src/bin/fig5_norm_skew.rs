//! Fig. 5 — why normalization makes components sensitive: a single injected error before
//! LayerNorm/RMSNorm skews the per-token mean and standard deviation and therefore disturbs
//! every element of the normalized output.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig5_norm_skew [-- --quick]
//! ```

use realm_bench::{banner, llama2_model, opt_model, HARNESS_SEED};
use realm_core::characterize::norm_skew_study;
use realm_core::report::render_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("normalization skew under a single injected error", "Fig. 5");

    for (name, model) in [
        ("OPT proxy", opt_model()),
        ("LLaMA-2 proxy", llama2_model()),
    ] {
        println!("{name}:");
        let mut rows = Vec::new();
        for magnitude in [0.0f32, 50.0, 200.0, 500.0, 2000.0] {
            let report = norm_skew_study(&model, magnitude, HARNESS_SEED);
            rows.push(vec![
                format!("{magnitude:.0}"),
                format!("{:.2}", report.clean_mean),
                format!("{:.2}", report.clean_std),
                format!("{:.2}", report.skewed_mean),
                format!("{:.2}", report.skewed_std),
                format!("{:.1}", 100.0 * report.post_norm_disturbed_fraction),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "error magnitude",
                    "clean mu",
                    "clean sigma",
                    "skewed mu",
                    "skewed sigma",
                    "post-norm disturbed [%]"
                ],
                &rows
            )
        );
    }
    println!(
        "Reading: the clean hidden state's statistics are dominated by its outlier channels; \
         a single large error acts as an artificial outlier, inflating sigma and disturbing \
         nearly every normalized element — the paper's explanation for why post-normalization \
         components (O, FC2, Down) are the sensitive ones."
    );
    Ok(())
}
