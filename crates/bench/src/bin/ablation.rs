//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. **Per-component adaptivity** — statistical ABFT with per-component critical regions
//!    (sensitive components get strict regions) versus a single global region applied to every
//!    component. The global-permissive variant loses model quality; the global-strict variant
//!    loses the recovery savings.
//! 2. **Outlier-aware activations** — the component sensitivity gap (O vs K) with the
//!    synthetic outlier channels enabled versus disabled, showing that the normalization
//!    sensitivity the paper reports hinges on the outlier-dominated statistics of LLM hidden
//!    states.
//!
//! ```text
//! cargo run --release -p realm-bench --bin ablation [-- --quick]
//! ```

use realm_abft::CriticalRegion;
use realm_bench::{banner, opt_model, trials, wikitext_task, HARNESS_SEED};
use realm_core::characterize::{componentwise_study, StudyConfig};
use realm_core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm_core::protection::RegionAssignment;
use realm_core::report::render_table;
use realm_eval::task::Task;
use realm_eval::wikitext::WikitextTask;
use realm_llm::{config::ModelConfig, model::Model, Component, Stage};
use realm_systolic::ProtectionScheme;

fn uniform_regions(region: CriticalRegion) -> RegionAssignment {
    let mut regions = RegionAssignment::new();
    for component in Component::ALL {
        regions.set(component, region);
    }
    regions
}

fn adaptivity_ablation() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- Ablation 1: per-component adaptivity of the critical regions --\n");
    let model = opt_model();
    let task = wikitext_task(&model);
    let voltage = 0.70;
    let variants: [(&str, RegionAssignment); 3] = [
        ("per-component (ReaLM)", RegionAssignment::new()),
        (
            "global permissive",
            uniform_regions(CriticalRegion::resilient_default()),
        ),
        (
            "global strict",
            uniform_regions(CriticalRegion::sensitive_default()),
        ),
    ];
    let clean = {
        let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
        pipeline.clean_value(&task)?
    };
    let mut rows = Vec::new();
    for (label, regions) in variants {
        let pipeline = ProtectedPipeline::with_regions(&model, PipelineConfig::default(), regions);
        let outcome = pipeline.run(&task, ProtectionScheme::StatisticalAbft, voltage, 3)?;
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", outcome.task_value - clean),
            format!("{:.3}", outcome.recovery_rate()),
            format!("{:.4e}", outcome.energy.total_j()),
        ]);
    }
    println!(
        "clean perplexity {clean:.2}, operating point {voltage} V\n{}",
        render_table(
            &[
                "region assignment",
                "perplexity increase",
                "recovery rate",
                "energy [J]"
            ],
            &rows
        )
    );
    Ok(())
}

fn outlier_ablation() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- Ablation 2: outlier channels and the sensitivity gap --\n");
    let config = StudyConfig {
        trials: trials(),
        seed: HARNESS_SEED,
        bit: 30,
    };
    let ber = [5e-3];
    let mut rows = Vec::new();
    for (label, model_config) in [
        ("with outlier channels", ModelConfig::opt_1_3b_proxy()),
        (
            "without outlier channels",
            ModelConfig::opt_1_3b_proxy().without_outliers(),
        ),
    ] {
        let mut model = Model::new(&model_config, HARNESS_SEED)?;
        if model_config.outlier_fraction == 0.0 {
            // Without outlier channels the pre-norm standard deviation collapses, which makes
            // the synthetic LM head over-confident; rescale the logit temperature by the
            // missing outlier variance so clean task difficulty stays comparable.
            let sigma_ratio = (1.0
                + ModelConfig::opt_1_3b_proxy().outlier_fraction
                    * ModelConfig::opt_1_3b_proxy().outlier_gain.powi(2))
            .sqrt();
            model.set_logit_temperature(model.logit_temperature() * sigma_ratio);
        }
        let task = WikitextTask::quick(model.language(), HARNESS_SEED);
        let clean = task.evaluate(&model, &mut realm_llm::NoopHook)?;
        let series = componentwise_study(
            &model,
            &task,
            &[Component::K, Component::O],
            &ber,
            Some(Stage::Prefill),
            &config,
        )?;
        let k = series[0].points[0].value - clean;
        let o = series[1].points[0].value - clean;
        rows.push(vec![
            label.to_string(),
            format!("{clean:.2}"),
            format!("{k:.2}"),
            format!("{o:.2}"),
            format!("{:.2}", o - k),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "activation statistics",
                "clean perplexity",
                "K degradation",
                "O degradation",
                "O minus K degradation"
            ],
            &rows
        )
    );
    println!(
        "Reading: the post-norm component O degrades dramatically more than the re-quantized \
         component K in both settings; the outlier channels are what give the *clean* model \
         its realistic heavy-tailed activation statistics (and quantization behaviour), while \
         K's robustness comes from INT8 re-quantization clipping and O's fragility from the \
         normalization skew of Fig. 5."
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("design-choice ablations", "DESIGN.md ablation index");
    adaptivity_ablation()?;
    outlier_ablation()?;
    Ok(())
}
