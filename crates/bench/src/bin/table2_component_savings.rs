//! Table II — optimal operating voltage and energy saving of statistical ABFT for every
//! network component of both evaluation models.
//!
//! ```text
//! cargo run --release -p realm-bench --bin table2_component_savings [-- --quick]
//! ```

use realm_bench::{
    banner, component_pipeline_config, hellaswag_task, llama3_model, opt_model, quick_mode,
    voltage_grid, wikitext_task, HARNESS_SEED,
};
use realm_core::report::render_component_savings;
use realm_core::sweep::component_sweet_spots;
use realm_eval::task::Task;
use realm_llm::{Component, Model};
use realm_systolic::ProtectionScheme;

fn components_for(model: &Model) -> Vec<Component> {
    let mut components: Vec<Component> = model.config().block_components().to_vec();
    if quick_mode() {
        components.truncate(4);
    }
    components
}

fn panel<T: Task + Sync>(
    title: &str,
    model: &Model,
    task: &T,
    budget: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {title} ---\n");
    let components = components_for(model);
    let base_config = component_pipeline_config(components[0]);
    let rows = component_sweet_spots(
        model,
        &base_config,
        task,
        &components,
        ProtectionScheme::ApproxAbft,
        &voltage_grid(),
        budget,
        HARNESS_SEED,
    )?;
    println!("{}", render_component_savings(&rows));
    if let (Some(best), Some(worst)) = (
        rows.iter().max_by(|a, b| {
            a.energy_saving_percent
                .partial_cmp(&b.energy_saving_percent)
                .unwrap()
        }),
        rows.iter().min_by(|a, b| {
            a.energy_saving_percent
                .partial_cmp(&b.energy_saving_percent)
                .unwrap()
        }),
    ) {
        println!(
            "largest saving: {} ({:.1}%); smallest saving: {} ({:.1}%) — sensitive components \
             leave less headroom, as in the paper.\n",
            best.component,
            best.energy_saving_percent,
            worst.component,
            worst.energy_saving_percent
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "per-component optimal voltage and energy saving",
        "Table II",
    );
    let opt = opt_model();
    let opt_task = wikitext_task(&opt);
    panel(
        "OPT proxy (WikiText-style perplexity, +0.3 budget)",
        &opt,
        &opt_task,
        0.3,
    )?;

    let llama = llama3_model();
    let llama_task = hellaswag_task(&llama);
    panel(
        "LLaMA-3 proxy (HellaSwag-style accuracy, 0.5% budget)",
        &llama,
        &llama_task,
        0.5,
    )?;
    Ok(())
}
