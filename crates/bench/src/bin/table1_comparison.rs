//! Table I — comparison of representative fault-mitigation techniques, augmented with the
//! quantities this reproduction can actually measure: hardware overhead and recovery rate at
//! a representative low-voltage operating point.
//!
//! ```text
//! cargo run --release -p realm-bench --bin table1_comparison [-- --quick]
//! ```

use realm_bench::{banner, opt_model, wikitext_task};
use realm_core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm_core::report::render_table;
use realm_systolic::{AreaPowerModel, ProtectionScheme, SystolicArray};

/// The qualitative rows of Table I (taken verbatim from the paper's comparison).
fn qualitative(scheme: ProtectionScheme) -> (&'static str, &'static str, &'static str) {
    // (level, hardware efficiency, scalability)
    match scheme {
        ProtectionScheme::None => ("-", "-", "-"),
        ProtectionScheme::Dmr => ("circuit", "low", "medium"),
        ProtectionScheme::RazorFfs | ProtectionScheme::ThunderVolt => ("circuit", "low", "low"),
        ProtectionScheme::ClassicalAbft | ProtectionScheme::ApproxAbft => {
            ("circuit-algorithm", "medium", "high")
        }
        ProtectionScheme::StatisticalAbft => ("circuit-algorithm", "high", "high"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("fault-mitigation technique comparison", "Table I");
    let array = SystolicArray::paper_256x256_ws();
    let area_power = AreaPowerModel::default_14nm(&array);

    let model = opt_model();
    let task = wikitext_task(&model);
    let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
    let voltage = 0.68;

    let mut rows = Vec::new();
    for scheme in ProtectionScheme::ALL {
        let (level, hw_eff, scalability) = qualitative(scheme);
        let overhead = area_power.overhead(scheme);
        let outcome = pipeline.run(&task, scheme, voltage, 5)?;
        rows.push(vec![
            scheme.label().to_string(),
            level.to_string(),
            hw_eff.to_string(),
            scalability.to_string(),
            format!("{:.2}", overhead.area_percent),
            format!("{:.2}", overhead.power_percent),
            format!("{:.3}", outcome.recovery_rate()),
            format!("{:.2}", outcome.task_value),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "method",
                "level",
                "hw efficiency",
                "scalability",
                "area ovh [%]",
                "power ovh [%]",
                format!("recovery rate @ {voltage} V").as_str(),
                "perplexity",
            ],
            &rows
        )
    );
    Ok(())
}
