//! Fig. 8 — circuit area and power overhead of the ABFT designs on the 256×256 systolic
//! array, for both the weight-stationary and output-stationary dataflows.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig8_overhead
//! ```

use realm_bench::banner;
use realm_core::report::render_table;
use realm_systolic::{AreaPowerModel, ProtectionScheme, SystolicArray};

fn main() {
    banner("circuit area and power overhead", "Fig. 8");
    for (label, array) in [
        ("WS dataflow", SystolicArray::paper_256x256_ws()),
        ("OS dataflow", SystolicArray::paper_256x256_os()),
    ] {
        let model = AreaPowerModel::default_14nm(&array);
        println!("{label} (256x256 PEs):");
        let rows: Vec<Vec<String>> = [
            ProtectionScheme::None,
            ProtectionScheme::ClassicalAbft,
            ProtectionScheme::ApproxAbft,
            ProtectionScheme::StatisticalAbft,
        ]
        .iter()
        .map(|&scheme| {
            let o = model.overhead(scheme);
            vec![
                scheme.label().to_string(),
                format!("{:.1}", o.total_area),
                format!("{:.2}", o.area_percent),
                format!("{:.1}", o.total_power),
                format!("{:.2}", o.power_percent),
            ]
        })
        .collect();
        println!(
            "{}",
            render_table(
                &[
                    "design",
                    "area [PE-eq]",
                    "area overhead [%]",
                    "power [PE-eq]",
                    "power overhead [%]"
                ],
                &rows
            )
        );
    }
    println!(
        "Paper reference: statistical ABFT costs 1.43% area / 1.82% power (WS) and \
         1.42% / 1.79% (OS) over the unprotected array."
    );
}
