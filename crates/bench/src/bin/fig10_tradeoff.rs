//! Fig. 10 — trade-off between the acceptable performance degradation and its impact on
//! recovery latency and total energy.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig10_tradeoff [-- --quick]
//! ```

use realm_abft::CriticalRegion;
use realm_bench::{
    banner, component_pipeline_config, hellaswag_task, llama3_model, opt_model, voltage_grid,
    wikitext_task, HARNESS_SEED,
};
use realm_core::pipeline::ProtectedPipeline;
use realm_core::protection::RegionAssignment;
use realm_core::report::render_table;
use realm_core::sweep::degradation_tradeoff;
use realm_eval::task::Task;
use realm_llm::{Component, Model};

/// Detector thresholds corresponding to an acceptable-degradation budget.
///
/// In the paper, the critical-region parameters are fitted under the chosen budget: a larger
/// budget moves the boundary outward (more error patterns tolerated, fewer recoveries). The
/// full fitting procedure lives in `realm_core::fit`; for the trade-off sweep we scale the
/// default region's frequency threshold proportionally to the budget, which captures the same
/// monotone relationship without re-running a characterization per budget point.
fn regions_for_budget(budget: f64, reference_budget: f64) -> RegionAssignment {
    let mut regions = RegionAssignment::new();
    let shift = (budget / reference_budget).log2();
    for component in Component::ALL {
        let base = if component.is_sensitive() {
            CriticalRegion::sensitive_default()
        } else {
            CriticalRegion::resilient_default()
        };
        regions.set(
            component,
            CriticalRegion {
                theta_freq_log2: base.theta_freq_log2 + shift,
                ..base
            },
        );
    }
    regions
}

fn panel<T: Task + Sync>(
    title: &str,
    model: &Model,
    task: &T,
    component: Component,
    budgets: &[f64],
    reference_budget: f64,
    eval_voltage: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {title} ---\n");
    let mut rows = Vec::new();
    for &budget in budgets {
        let pipeline = ProtectedPipeline::with_regions(
            model,
            component_pipeline_config(component),
            regions_for_budget(budget, reference_budget),
        );
        let points = degradation_tradeoff(
            &pipeline,
            task,
            &[budget],
            &voltage_grid(),
            eval_voltage,
            HARNESS_SEED,
        )?;
        if let Some(p) = points.first() {
            rows.push(vec![
                format!("{:.2}", p.budget),
                format!("{}", p.recovery_cycles),
                format!("{:.2}", p.optimal_voltage),
                format!("{:.4e}", p.optimal_energy_j),
            ]);
        } else {
            rows.push(vec![
                format!("{budget:.2}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "acceptable degradation",
                format!("recovery cycles @ {eval_voltage} V").as_str(),
                "optimal voltage [V]",
                "total energy [J]"
            ],
            &rows
        )
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "degradation vs recovery latency / energy trade-off",
        "Fig. 10",
    );
    let opt = opt_model();
    let opt_task = wikitext_task(&opt);
    panel(
        "OPT proxy, FC1 at 0.64 V",
        &opt,
        &opt_task,
        Component::Fc1,
        &[0.1, 0.3, 1.0, 3.0, 10.0],
        0.3,
        0.64,
    )?;

    let llama = llama3_model();
    let llama_task = hellaswag_task(&llama);
    panel(
        "LLaMA-3 proxy, Up at 0.64 V",
        &llama,
        &llama_task,
        Component::Up,
        &[0.25, 0.5, 1.0, 2.0, 5.0],
        0.5,
        0.64,
    )?;
    Ok(())
}
