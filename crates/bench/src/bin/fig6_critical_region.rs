//! Fig. 6 — the fitted critical error regions for a resilient and a sensitive component.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig6_critical_region [-- --quick]
//! ```

use realm_bench::{banner, opt_model, trials, wikitext_task, HARNESS_SEED};
use realm_core::characterize::StudyConfig;
use realm_core::fit::{fit_component_region, DegradationBudget};
use realm_core::report::render_table;
use realm_llm::Component;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("critical error regions", "Fig. 6");
    let model = opt_model();
    let task = wikitext_task(&model);
    let config = StudyConfig {
        trials: trials(),
        seed: HARNESS_SEED,
        bit: 30,
    };
    let budget = DegradationBudget::paper_default();
    let msds = [18u32, 21, 24, 27, 30];
    let freqs = [0u32, 2, 4, 6, 8, 10, 12];

    let mut rows = Vec::new();
    for component in [Component::K, Component::Sv, Component::O, Component::Fc2] {
        let fit = fit_component_region(&model, &task, component, &msds, &freqs, &budget, &config)?;
        rows.push(vec![
            component.label().to_string(),
            if component.is_sensitive() {
                "sensitive"
            } else {
                "resilient"
            }
            .to_string(),
            format!("{:.2}", fit.region.a),
            format!("{:.2}", fit.region.b),
            format!("{:.2}", fit.region.theta_freq_log2),
            fit.fitted.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "component",
                "class",
                "slope a",
                "intercept b",
                "log2 theta_freq",
                "fitted from data"
            ],
            &rows
        )
    );
    println!(
        "Reading: resilient components get a permissive region (high theta_freq — sporadic \
         errors of any size are tolerated); sensitive components get theta_freq below the \
         smallest sampled frequency, so any significant error triggers recovery — matching \
         the two panel shapes of Fig. 6."
    );
    Ok(())
}
