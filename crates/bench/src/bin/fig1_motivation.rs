//! Fig. 1 — motivation: (a) lower operating voltages raise the BER and wreck perplexity
//! without protection; (b) statistical ABFT saves most of classical ABFT's recovery cost.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig1_motivation [-- --quick]
//! ```

use realm_bench::{banner, opt_model, trials, wikitext_task, HARNESS_SEED};
use realm_core::characterize::{componentwise_study, StudyConfig};
use realm_core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm_core::report::render_table;
use realm_inject::VoltageBerCurve;
use realm_llm::{Component, Stage};
use realm_systolic::ProtectionScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("motivation", "Fig. 1");
    let model = opt_model();
    let task = wikitext_task(&model);
    let curve = VoltageBerCurve::default_14nm();

    // --- Fig. 1(a): voltage → BER → perplexity without protection -----------------------
    println!("Fig. 1(a): operating voltage, BER and unprotected perplexity\n");
    let config = StudyConfig {
        trials: trials(),
        seed: HARNESS_SEED,
        bit: 30,
    };
    let voltages = [0.90, 0.82, 0.76, 0.70, 0.66, 0.62, 0.58];
    let mut rows = Vec::new();
    for &v in &voltages {
        let ber = curve.ber_at(v);
        // Unprotected degradation at this BER: inject into every component of every layer.
        let series = componentwise_study(
            &model,
            &task,
            &[
                Component::Q,
                Component::K,
                Component::V,
                Component::O,
                Component::Fc1,
                Component::Fc2,
            ],
            &[ber],
            Some(Stage::Prefill),
            &config,
        )?;
        let worst = series
            .iter()
            .map(|s| s.points[0].value)
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = series.iter().map(|s| s.points[0].value).sum::<f64>() / series.len() as f64;
        rows.push(vec![
            format!("{v:.2}"),
            format!("{ber:.2e}"),
            format!("{mean:.2}"),
            format!("{worst:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["voltage [V]", "BER", "mean perplexity", "worst component"],
            &rows
        )
    );

    // --- Fig. 1(b): recovery cost saved by statistical ABFT ------------------------------
    println!("Fig. 1(b): recovery rate vs voltage (classical vs statistical ABFT)\n");
    let pipeline = ProtectedPipeline::new(&model, PipelineConfig::default());
    let mut rows = Vec::new();
    for &v in &voltages {
        let classical = pipeline.run(&task, ProtectionScheme::ClassicalAbft, v, 3)?;
        let statistical = pipeline.run(&task, ProtectionScheme::StatisticalAbft, v, 3)?;
        let saved = if classical.recoveries > 0 {
            100.0 * (classical.recoveries - statistical.recoveries) as f64
                / classical.recoveries as f64
        } else {
            0.0
        };
        rows.push(vec![
            format!("{v:.2}"),
            format!("{:.3}", classical.recovery_rate()),
            format!("{:.3}", statistical.recovery_rate()),
            format!("{saved:.1}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "voltage [V]",
                "classical recovery rate",
                "statistical recovery rate",
                "recovery cost saved [%]"
            ],
            &rows
        )
    );
    Ok(())
}
