//! Fig. 4 — the full resilience characterization (research questions Q1.1–Q2.2).
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig4_characterization [-- --study q13] [--quick]
//! ```
//!
//! Without `--study`, every panel is regenerated. Panels map to the paper as follows:
//! `q11` → Fig. 4(a)(b), `q12` → Fig. 4(c)(d), `q13` → Fig. 4(e)(f), `q14` → Fig. 4(g)(h),
//! `q21` → Fig. 4(i)(j), `q22` → Fig. 4(k)(l).

use realm_bench::{
    banner, ber_grid, lambada_task, llama2_model, opt_model, trials, wikitext_task, HARNESS_SEED,
};
use realm_core::characterize::{
    bitwise_study, componentwise_study, layerwise_study, magfreq_study, stagewise_study,
    StudyConfig,
};
use realm_core::report::render_series_table;
use realm_eval::task::Task;
use realm_llm::{Component, Stage};

fn study_config() -> StudyConfig {
    StudyConfig {
        trials: trials(),
        seed: HARNESS_SEED,
        bit: 30,
    }
}

fn requested_study() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--study")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("LLM resilience characterization", "Fig. 4, Q1.1-Q2.2");
    let study = requested_study();
    let run = |name: &str| study.as_deref().is_none_or(|s| s == name);

    let opt = opt_model();
    let opt_lambada = lambada_task(&opt);
    let llama = llama2_model();
    let llama_wikitext = wikitext_task(&llama);
    let config = study_config();
    let bers = ber_grid();

    if run("q11") {
        println!("-- Q1.1 layer-wise resilience (Fig. 4(a)(b)) --\n");
        let layers: Vec<usize> = vec![0, opt.config().num_layers / 2, opt.config().num_layers - 1];
        let series = layerwise_study(&opt, &opt_lambada, &layers, &bers, &config)?;
        println!(
            "OPT proxy, LAMBADA-style accuracy:\n{}",
            render_series_table("BER", &series)
        );
        let layers: Vec<usize> = vec![
            0,
            llama.config().num_layers / 2,
            llama.config().num_layers - 1,
        ];
        let series = layerwise_study(&llama, &llama_wikitext, &layers, &bers, &config)?;
        println!(
            "LLaMA-2 proxy, WikiText-style perplexity:\n{}",
            render_series_table("BER", &series)
        );
    }

    if run("q12") {
        println!("-- Q1.2 bit-wise resilience (Fig. 4(c)(d)) --\n");
        let bits = [10u8, 14, 22, 30];
        let series = bitwise_study(&opt, &opt_lambada, Component::K, &bits, &bers, &config)?;
        println!(
            "errors in K (re-quantized INT8 output):\n{}",
            render_series_table("BER", &series)
        );
        let series = bitwise_study(&llama, &llama_wikitext, Component::O, &bits, &bers, &config)?;
        println!(
            "errors in O (floating-point output):\n{}",
            render_series_table("BER", &series)
        );
    }

    if run("q13") {
        println!("-- Q1.3 component-wise resilience, prefill stage (Fig. 4(e)(f)) --\n");
        let opt_components = [
            Component::Q,
            Component::K,
            Component::V,
            Component::QkT,
            Component::Sv,
            Component::O,
            Component::Fc1,
            Component::Fc2,
        ];
        let series = componentwise_study(
            &opt,
            &opt_lambada,
            &opt_components,
            &bers,
            Some(Stage::Prefill),
            &config,
        )?;
        println!("OPT proxy:\n{}", render_series_table("BER", &series));
        let llama_components = [
            Component::Q,
            Component::K,
            Component::V,
            Component::QkT,
            Component::Sv,
            Component::O,
            Component::Gate,
            Component::Up,
            Component::Down,
        ];
        let series = componentwise_study(
            &llama,
            &llama_wikitext,
            &llama_components,
            &bers,
            Some(Stage::Prefill),
            &config,
        )?;
        println!("LLaMA-2 proxy:\n{}", render_series_table("BER", &series));
    }

    if run("q14") {
        println!("-- Q1.4 magnitude/frequency trade-off (Fig. 4(g)(h)) --\n");
        let msds = [19u32, 21, 25, 26, 30];
        let freqs = [0u32, 2, 4, 6, 8, 10, 12, 14];
        for (label, component) in [
            ("resilient (K)", Component::K),
            ("sensitive (O)", Component::O),
        ] {
            println!("{label}:");
            println!("log2(MSD)  log2(freq)  log2(mag)  {}", opt_lambada.metric());
            let grid = magfreq_study(&opt, &opt_lambada, component, &msds, &freqs, &config)?;
            for p in &grid {
                println!(
                    "{:>9}  {:>10}  {:>9}  {:>10.2}",
                    p.log2_msd, p.log2_freq, p.log2_mag, p.value
                );
            }
            println!();
        }
    }

    if run("q21") {
        println!("-- Q2.1 prefill vs decode sensitivity (Fig. 4(i)(j)) --\n");
        let task = realm_eval::xsum::XsumTask::standard(llama.language(), HARNESS_SEED);
        let series = stagewise_study(&llama, &task, &bers, &config)?;
        println!(
            "LLaMA-2 proxy, X-Sum-style ROUGE-1:\n{}",
            render_series_table("BER", &series)
        );
    }

    if run("q22") {
        println!("-- Q2.2 component-wise resilience, decode stage (Fig. 4(k)(l)) --\n");
        let task = realm_eval::gsm8k::Gsm8kTask::standard(llama.language(), HARNESS_SEED);
        let components = [
            Component::Q,
            Component::K,
            Component::V,
            Component::Sv,
            Component::O,
            Component::Up,
            Component::Down,
        ];
        let series = componentwise_study(
            &llama,
            &task,
            &components,
            &bers,
            Some(Stage::Decode),
            &config,
        )?;
        println!(
            "LLaMA-2 proxy, GSM8K-style accuracy:\n{}",
            render_series_table("BER", &series)
        );
    }

    Ok(())
}
