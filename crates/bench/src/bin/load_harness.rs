//! Trace-driven load harness for the network front end.
//!
//! Boots a loopback [`realm_net::NetServer`] over a tiny model, replays a seeded
//! bounded-Pareto arrival trace with a mixed prompt/budget/priority/policy workload, and
//! reports the serving metrics: TTFT and TPOT p50/p99, shed rate, and per-request ABFT
//! detection/recovery attribution. The `serving_network` baselines committed to
//! `BENCH_gemm.json` come from this harness.
//!
//! ```text
//! cargo run --release -p realm-bench --bin load_harness [-- --quick | --smoke]
//! ```
//!
//! * default — full measurement trace, prints the metric table and the JSON baseline
//!   entries for hand-merging into `BENCH_gemm.json`.
//! * `--quick` — smaller trace, same output shape (CI-friendly measurement pass).
//! * `--smoke` — the CI resilience gate: ~50 mixed-policy requests with an **armed**
//!   bit-flip injector behind the engine's protector, one client disconnecting
//!   mid-stream, one request racing the shed path; asserts clean drain and consistent
//!   accounting, exits non-zero on any violation.

use realm_bench::{banner, quick_mode, HARNESS_SEED};
use realm_inject::{
    error_model::{FixedBitModel, MagFreqModel},
    injector::ErrorInjector,
    targeting::Target,
};
use realm_llm::{config::ModelConfig, model::Model, Component, NoopHook};
use realm_net::trace::TraceConfig;
use realm_net::{generate_trace, run_trace, LoadOptions, LoadReport, NetConfig, NetServer};
use realm_serve::{AdaptiveConfig, ProtectionPolicy, ServeConfig};

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// The harness model: `tiny_opt` with enough context for the bimodal long prompts (up
/// to 512 tokens) plus the long disconnect request's 200-token budget.
fn harness_model() -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.max_seq_len = 768;
    Model::new(&config, HARNESS_SEED).unwrap()
}

/// A bounded-Pareto trace with a bimodal prompt mix: `long_prompt_permille` of the
/// requests carry a 256–512-token prompt — the head-of-line-blocking workload chunked
/// prefill exists for. `0` reproduces the historical short-prompt trace.
fn harness_trace(requests: usize, long_prompt_permille: u32) -> Vec<realm_net::TraceRequest> {
    generate_trace(&TraceConfig {
        seed: HARNESS_SEED,
        requests,
        mean_interarrival_us: 1_500.0,
        long_prompt_permille,
        long_prompt_len: (256, 512),
        ..TraceConfig::default()
    })
}

fn serve_and_replay(
    mut trace: Vec<realm_net::TraceRequest>,
    slots: usize,
    step_budget: usize,
    shed_slo: Option<u64>,
    hook: Option<Box<dyn realm_llm::GemmHook + Send>>,
    adaptive: AdaptiveConfig,
    disconnect: Option<(usize, usize)>,
) -> (LoadReport, realm_net::NetReport) {
    let model = harness_model();
    if let Some((index, _)) = disconnect {
        // Give the deliberately-disconnecting request a budget long enough that the
        // hang-up lands mid-generation, so the engine must actually cancel it.
        trace[index].body.max_new_tokens = 200;
    }
    let server = NetServer::bind(NetConfig {
        workers: 8,
        shed_queue_age_tokens: shed_slo,
        serve: ServeConfig::with_slots(slots)
            .with_step_token_budget(step_budget)
            .with_adaptive(adaptive),
        ..NetConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve_with_hook(&model, hook).unwrap());
        let report = run_trace(
            addr,
            &trace,
            &LoadOptions {
                disconnect,
                ..LoadOptions::default()
            },
        );
        handle.drain();
        let net = serving.join().unwrap();
        (report, net)
    })
}

fn print_report(report: &LoadReport, net: &realm_net::NetReport) {
    for line in report.summary_lines() {
        println!("{line}");
    }
    let e = &net.engine;
    println!(
        "engine: {} completed, {} cancelled, {} shed, {} detections, {} recoveries",
        e.requests_completed, e.requests_cancelled, e.requests_shed, e.detections, e.recoveries
    );
    println!(
        "server: {} connections, {} http requests, {} streams completed, {} disconnects",
        net.connections, net.http_requests, net.streams_completed, net.disconnects
    );
    println!(
        "chunked prefill: {} chunks, budget utilization {:.3}, decode stall p99 {:.1}us",
        e.prefill_chunks, e.step_budget_utilization, e.decode_stall_p99_us
    );
}

/// Prints the `serving_network` baseline entries in the `BENCH_gemm.json` schema
/// (values in nanoseconds; the shed rate is encoded as permille in `best_ns`).
fn print_bench_entries(report: &LoadReport) {
    let entries = [
        ("serving_network/ttft_p50", report.ttft_ns.0),
        ("serving_network/ttft_p99", report.ttft_ns.1),
        ("serving_network/tpot_p50", report.tpot_ns.0),
        ("serving_network/tpot_p99", report.tpot_ns.1),
        (
            "serving_network/shed_permille",
            (report.shed_rate * 1_000.0).round() as u64,
        ),
    ];
    println!("\nBENCH_gemm.json `serving_network` entries:");
    for (name, value) in entries {
        println!(
            "    {{ \"name\": \"{name}\", \"best_ns\": {value}, \"median_ns\": {value}, \"iterations\": {} }},",
            report.completed.max(1)
        );
    }
}

fn measurement() {
    let requests = if quick_mode() { 40 } else { 160 };
    banner(
        &format!("load_harness: {requests}-request bimodal bounded-Pareto network trace"),
        "serving front end",
    );
    // 15% long prompts (256–512 tokens) over 4 slots with a 64-token step budget: the
    // workload where chunked prefill keeps decode streams flowing past long arrivals.
    let trace = harness_trace(requests, 150);
    let (report, net) = serve_and_replay(
        trace,
        4,
        64,
        Some(8_192),
        None,
        AdaptiveConfig::default(),
        None,
    );
    print_report(&report, &net);
    assert_eq!(
        report.errors, 0,
        "no transport errors under the measurement trace"
    );
    print_bench_entries(&report);
}

fn smoke() {
    banner(
        "load_harness --smoke: mixed-policy resilience gate over loopback",
        "serving front end",
    );
    let requests = 50;
    // Tight slots + a finite token SLO so the shed path is reachable; armed injector so
    // the ABFT path is live; one mid-stream disconnect so cancellation is exercised.
    // 10% of the mix carries long prompts, and request 1 is pinned to a 384-token
    // prompt: it is admitted while slots are still free (so shedding cannot eat it) and
    // must prefill in at least ceil(384/32) budgeted chunks without parking the
    // concurrent short streams.
    let mut trace = harness_trace(requests, 100);
    let pinned_long = 384usize;
    trace[1].body.prompt = (0..pinned_long as u32).map(|t| t % 64).collect();
    let step_budget = 32;
    let everywhere: Box<dyn realm_llm::GemmHook + Send> = Box::new(ErrorInjector::everywhere(
        FixedBitModel::bit30(0.002),
        HARNESS_SEED,
    ));
    let (report, net) = serve_and_replay(
        trace,
        2,
        step_budget,
        Some(512),
        Some(everywhere),
        AdaptiveConfig::default(),
        Some((7, 3)),
    );
    print_report(&report, &net);

    let mut failures = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };
    check(report.errors == 0, "zero transport errors");
    check(
        report.disconnected == 1,
        "exactly one deliberate disconnect",
    );
    check(
        report.completed + report.shed + report.disconnected == requests,
        "every request accounted for (completed + shed + disconnected)",
    );
    check(
        net.engine.requests_cancelled >= 1,
        "the mid-stream disconnect cancelled its request",
    );
    check(
        net.disconnects == 1,
        "the server observed exactly one mid-stream disconnect",
    );
    check(
        net.engine.requests_shed == report.shed as u64,
        "engine and client agree on the shed count",
    );
    check(
        net.engine.requests_completed >= report.completed as u64,
        "engine completed at least every fully-streamed request",
    );
    check(
        net.engine.active_slots == 0 && net.engine.queue_depth == 0,
        "clean drain: no active slots, empty queue",
    );
    check(
        net.streams_completed == report.completed as u64,
        "every completed request got its terminal chunk",
    );
    check(
        net.engine.prefill_chunks >= (pinned_long / step_budget) as u64,
        "the pinned 384-token prompt was prefilled chunk by chunk under the step budget",
    );
    check(
        net.engine.step_budget_utilization > 0.0 && net.engine.step_budget_utilization <= 1.0,
        "the per-step token budget was exercised and never overrun",
    );

    // Phase 2: the adaptive-protection gate. A time-correlated burst injector (one
    // +2^30 error per GEMM on the attention output projection, 4 steps on / 12 steps
    // off) drives the adaptive controller through at least one full escalate →
    // de-escalate cycle while every stream must stay bit-identical to an uninjected
    // solo run. `Component::O` is sensitive, so even before escalation the statistical
    // protector repairs its faults bit-exactly — the burst fuels the detection window
    // without ever corrupting output. A single-error model (rather than per-element
    // bit flips) keeps the matrix-sum deviation non-zero by construction: two
    // opposite-sign flips in one inspection window would cancel the MSD and be
    // tolerated, which is faithful to the hardware but would make this gate flaky.
    println!("\nphase 2: burst-injector adaptive-protection gate");
    let burst_requests = 40;
    let burst_trace = generate_trace(&TraceConfig {
        seed: HARNESS_SEED + 1,
        requests: burst_requests,
        mean_interarrival_us: 800.0,
        max_new_tokens: (6, 10),
        // No unprotected requests: a batch window holding only unprotected sequences
        // skips inspection entirely, which would let burst faults through unrepaired.
        policies: vec![
            (ProtectionPolicy::statistical(), 3),
            (ProtectionPolicy::classical(), 1),
        ],
        ..TraceConfig::default()
    });
    let burst_injector: Box<dyn realm_llm::GemmHook + Send> = Box::new(
        ErrorInjector::new(
            MagFreqModel::new(1 << 30, 1),
            Target::new().components([Component::O]),
            HARNESS_SEED,
        )
        .with_burst(4, 12),
    );
    let adaptive = AdaptiveConfig {
        window_steps: 4,
        elevate_detections: 1,
        escalate_detections: 6,
        clean_window_steps: 2,
        hysteresis_steps: 1,
        ..AdaptiveConfig::enabled()
    };
    let (burst_report, burst_net) = serve_and_replay(
        burst_trace.clone(),
        2,
        step_budget,
        None,
        Some(burst_injector),
        adaptive,
        None,
    );
    print_report(&burst_report, &burst_net);
    let be = &burst_net.engine;
    println!(
        "adaptive: {} escalations, {} de-escalations, {} protection-shed steps",
        be.policy_escalations, be.policy_deescalations, be.protection_shed_steps
    );
    check(burst_report.errors == 0, "burst arm: zero transport errors");
    check(
        burst_report.completed == burst_requests,
        "burst arm: every request completed (no shedding configured)",
    );
    check(
        be.policy_escalations >= 1,
        "burst arm: the detection bursts drove at least one escalation",
    );
    check(
        be.policy_deescalations >= 1,
        "burst arm: a clean window stepped protection back down at least once",
    );
    check(
        be.detections > 0,
        "burst arm: the armed injector produced detections",
    );
    let clean_model = harness_model();
    let mut bit_clean = true;
    for outcome in &burst_report.outcomes {
        if outcome.status != 200 {
            continue;
        }
        let body = &burst_trace[outcome.index].body;
        let solo = clean_model
            .generate(&body.prompt, body.max_new_tokens, &mut NoopHook)
            .expect("clean solo generation succeeds");
        if outcome.tokens != solo.tokens {
            bit_clean = false;
            eprintln!(
                "  stream {} diverged from the clean solo run ({} tokens)",
                outcome.index,
                outcome.tokens.len()
            );
        }
    }
    check(
        bit_clean,
        "burst arm: every stream is bit-identical to an uninjected solo run",
    );

    if failures.is_empty() {
        println!("\nsmoke: all assertions passed, drain was clean");
    } else {
        eprintln!("\nsmoke FAILED:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        std::process::exit(1);
    }
}

fn main() {
    if smoke_mode() {
        smoke();
    } else {
        measurement();
    }
}
