//! Fig. 9 — LLM performance and total energy vs operating voltage for every protection
//! scheme, protecting component `K` of the OPT proxy and component `V` of the LLaMA-3 proxy.
//!
//! ```text
//! cargo run --release -p realm-bench --bin fig9_energy_sweep [-- --quick]
//! ```

use realm_bench::{
    banner, component_pipeline_config, hellaswag_task, llama3_model, opt_model, voltage_grid,
    wikitext_task, HARNESS_SEED,
};
use realm_core::pipeline::ProtectedPipeline;
use realm_core::report::render_voltage_sweep;
use realm_core::sweep::scheme_comparison;
use realm_eval::task::Task;
use realm_llm::{Component, Model};
use realm_systolic::ProtectionScheme;

fn panel<T: Task + Sync>(
    title: &str,
    model: &Model,
    task: &T,
    component: Component,
    budget: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {title} ---\n");
    let pipeline = ProtectedPipeline::new(model, component_pipeline_config(component));
    let clean = pipeline.clean_value(task)?;
    println!("clean {}: {clean:.2}\n", task.metric());
    let voltages = voltage_grid();
    let schemes = [
        ProtectionScheme::None,
        ProtectionScheme::ThunderVolt,
        ProtectionScheme::Dmr,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ];
    let sweeps = scheme_comparison(&pipeline, task, &schemes, &voltages, HARNESS_SEED)?;
    for sweep in &sweeps {
        println!("{}", render_voltage_sweep(sweep));
    }
    println!("sweet spots under an acceptable degradation of {budget}:");
    let higher_is_better = task.metric().higher_is_better();
    let baseline_best = sweeps
        .iter()
        .filter(|s| {
            s.scheme != ProtectionScheme::StatisticalAbft && s.scheme != ProtectionScheme::None
        })
        .filter_map(|s| s.sweet_spot(clean, higher_is_better, budget))
        .map(|o| o.energy.total_j())
        .fold(f64::INFINITY, f64::min);
    for sweep in &sweeps {
        match sweep.sweet_spot(clean, higher_is_better, budget) {
            Some(spot) => {
                let saving = if sweep.scheme == ProtectionScheme::StatisticalAbft
                    && baseline_best.is_finite()
                {
                    format!(
                        "  ({:.2}% vs best prior scheme)",
                        100.0 * (baseline_best - spot.energy.total_j()) / baseline_best
                    )
                } else {
                    String::new()
                };
                println!(
                    "  {:<28} {:.2} V   {:.4e} J{}",
                    sweep.scheme.to_string(),
                    spot.voltage,
                    spot.energy.total_j(),
                    saving
                );
            }
            None => println!(
                "  {:<28} no operating point stays within the budget",
                sweep.scheme.to_string()
            ),
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "LLM performance and total energy vs operating voltage",
        "Fig. 9",
    );

    let opt = opt_model();
    let opt_task = wikitext_task(&opt);
    panel(
        "Fig. 9(a): OPT proxy on WikiText-style perplexity, protecting K",
        &opt,
        &opt_task,
        Component::K,
        0.3,
    )?;

    let llama = llama3_model();
    let llama_task = hellaswag_task(&llama);
    panel(
        "Fig. 9(b): LLaMA-3 proxy on HellaSwag-style accuracy, protecting V",
        &llama,
        &llama_task,
        Component::V,
        0.5,
    )?;
    Ok(())
}
