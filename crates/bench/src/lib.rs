//! Shared plumbing for the figure/table regeneration binaries and the Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper (see
//! `EXPERIMENTS.md` at the workspace root for the index). They all follow the same pattern:
//! build the proxy models, build the tasks, run the relevant `realm-core` study or sweep, and
//! print the series as aligned text tables. The helpers here keep the setup consistent so the
//! regenerated numbers are comparable across binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use realm_core::pipeline::PipelineConfig;
use realm_eval::corpus::CorpusSpec;
use realm_eval::hellaswag::HellaswagTask;
use realm_eval::lambada::LambadaTask;
use realm_eval::wikitext::WikitextTask;
use realm_llm::{config::ModelConfig, model::Model, Component};
use realm_systolic::SystolicArray;

/// Workspace-wide seed used by every harness so regenerated figures are identical run-to-run.
pub const HARNESS_SEED: u64 = 2025;

/// Returns `true` when the harness should run in quick mode (fewer trials, smaller sweeps).
///
/// Quick mode is selected either with the `--quick` command-line flag or by setting the
/// `REALM_QUICK=1` environment variable; CI and `cargo bench` runs use it to stay fast.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("REALM_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Number of Monte-Carlo trials per sweep point, honouring quick mode.
pub fn trials() -> usize {
    if quick_mode() {
        3
    } else {
        8
    }
}

/// The OPT-1.3B proxy model used throughout the evaluation.
pub fn opt_model() -> Model {
    Model::new(&ModelConfig::opt_1_3b_proxy(), HARNESS_SEED).expect("preset config is valid")
}

/// The LLaMA-2-7B proxy model used by the characterization studies.
pub fn llama2_model() -> Model {
    Model::new(&ModelConfig::llama_2_7b_proxy(), HARNESS_SEED).expect("preset config is valid")
}

/// The LLaMA-3-8B proxy model used by the evaluation section.
pub fn llama3_model() -> Model {
    Model::new(&ModelConfig::llama_3_8b_proxy(), HARNESS_SEED).expect("preset config is valid")
}

/// The WikiText-style perplexity task for a model.
pub fn wikitext_task(model: &Model) -> WikitextTask {
    let spec = if quick_mode() {
        CorpusSpec::quick()
    } else {
        CorpusSpec {
            num_sequences: 8,
            seq_len: 20,
            ..CorpusSpec::standard()
        }
    };
    WikitextTask::new(model.language(), &spec, HARNESS_SEED)
}

/// The LAMBADA-style accuracy task for a model.
pub fn lambada_task(model: &Model) -> LambadaTask {
    if quick_mode() {
        LambadaTask::quick(model.language(), HARNESS_SEED)
    } else {
        LambadaTask::new(model.language(), 32, 10, HARNESS_SEED)
    }
}

/// The HellaSwag-style accuracy task for a model.
pub fn hellaswag_task(model: &Model) -> HellaswagTask {
    if quick_mode() {
        HellaswagTask::quick(model.language(), HARNESS_SEED)
    } else {
        HellaswagTask::new(model.language(), 16, 4, 8, 5, HARNESS_SEED)
    }
}

/// The BER grid used by the characterization figures (the paper sweeps 1e-8 … 1e-2).
pub fn ber_grid() -> Vec<f64> {
    if quick_mode() {
        vec![1e-5, 1e-3, 1e-2]
    } else {
        vec![1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
    }
}

/// The operating-voltage grid used by the energy figures (0.60 V … 0.90 V).
pub fn voltage_grid() -> Vec<f64> {
    let steps = if quick_mode() { 5 } else { 11 };
    (0..steps)
        .map(|i| 0.60 + 0.30 * i as f64 / (steps - 1) as f64)
        .collect()
}

/// Pipeline configuration used by the energy experiments: the paper's 256×256 WS array with
/// errors injected into one protected component.
pub fn component_pipeline_config(component: Component) -> PipelineConfig {
    PipelineConfig {
        array: SystolicArray::paper_256x256_ws(),
        protected_component: Some(component),
        ..PipelineConfig::default()
    }
}

/// Prints the standard harness banner naming the experiment being regenerated.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("=== ReaLM reproduction: {experiment} ({paper_ref}) ===");
    println!(
        "mode: {}   seed: {HARNESS_SEED}\n",
        if quick_mode() { "quick" } else { "full" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_and_tasks_construct() {
        let model = opt_model();
        let task = wikitext_task(&model);
        assert!(!task.corpus().is_empty());
        let _ = lambada_task(&model);
        let _ = hellaswag_task(&llama3_model());
    }

    #[test]
    fn grids_are_ordered() {
        let bers = ber_grid();
        assert!(bers.windows(2).all(|w| w[0] < w[1]));
        let volts = voltage_grid();
        assert!(volts.windows(2).all(|w| w[0] < w[1]));
        assert!((volts[0] - 0.60).abs() < 1e-9);
        assert!((volts.last().unwrap() - 0.90).abs() < 1e-9);
    }

    #[test]
    fn component_config_targets_requested_component() {
        let cfg = component_pipeline_config(Component::K);
        assert_eq!(cfg.protected_component, Some(Component::K));
        assert_eq!(cfg.array.rows, 256);
    }
}
