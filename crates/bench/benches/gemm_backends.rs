//! Backend comparison for the quantized GEMM hot path: Reference vs Blocked vs Parallel vs
//! the SIMD microkernel, and fused-checksum vs separate-pass checksums on each backend.
//!
//! This is the perf contract of the `GemmEngine` backends: `Parallel` must beat `Reference`
//! and `Simd` must beat `Blocked` by ≥1.8× (asserted by `report_simd_speedup` whenever the
//! AVX2 microkernel is dispatched) on the paper-scale 256×256×256 INT8 GEMM, and the fused
//! checksum pass must beat running the GEMM plus the old two-pass checksum functions. Run
//! with `REALM_BENCH_JSON=BENCH_gemm.json cargo bench --bench gemm_backends` to refresh the
//! committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use realm_abft::checksum;
use realm_tensor::engine::EngineKind;
use realm_tensor::simd::simd_dispatch_label;
use realm_tensor::{rng, MatI8};
use std::time::Instant;

fn random_i8(seed: u64, rows: usize, cols: usize) -> MatI8 {
    let mut r = rng::seeded(seed);
    MatI8::from_fn(rows, cols, |_, _| r.gen_range(-128i16..=127) as i8)
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_i8_backends");
    group.sample_size(15);
    for &n in &[64usize, 128, 256] {
        let a = random_i8(1, n, n);
        let b = random_i8(2, n, n);
        for kind in EngineKind::ALL {
            let engine = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |bencher, _| {
                bencher.iter(|| engine.gemm_i8(&a, &b).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_fused_vs_two_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksummed_gemm_256");
    group.sample_size(15);
    let n = 256usize;
    let a = random_i8(3, n, n);
    let b = random_i8(4, n, n);
    for kind in EngineKind::ALL {
        let engine = kind.build();
        group.bench_function(format!("{}_fused", kind.label()), |bencher| {
            bencher.iter(|| engine.gemm_i8_checksummed(&a, &b).unwrap());
        });
        group.bench_function(format!("{}_two_pass", kind.label()), |bencher| {
            bencher.iter(|| engine.gemm_i8_checksummed_two_pass(&a, &b).unwrap());
        });
    }
    // The pre-engine baseline: plain GEMM followed by the checksum.rs free functions, i.e.
    // what the protected pipeline paid per GEMM before this refactor.
    let reference = EngineKind::Reference.build();
    group.bench_function("reference_plus_checksum_fns", |bencher| {
        bencher.iter(|| {
            let acc = reference.gemm_i8(&a, &b).unwrap();
            let dev = checksum::column_deviations(&a, &b, &acc);
            checksum::msd(&dev)
        });
    });
    group.finish();
}

fn bench_fused_decode_shape(c: &mut Criterion) {
    // Decode-stage shape: a handful of tokens against a square weight. Here the checksum
    // passes are a large fraction of the GEMM itself, so fusing them into the kernel's
    // cache-hot panels is visible, not noise.
    let mut group = c.benchmark_group("checksummed_gemm_4x2048x2048");
    group.sample_size(20);
    // 4 MiB of weights: too big for L2, so the two-pass checksum genuinely re-streams the
    // matrix while the fused pass reads panels the multiply just touched.
    let a = random_i8(5, 4, 2048);
    let b = random_i8(6, 2048, 2048);
    for kind in [
        EngineKind::Blocked,
        EngineKind::Parallel,
        EngineKind::Simd,
        EngineKind::SimdParallel,
    ] {
        let engine = kind.build();
        group.bench_function(format!("{}_fused", kind.label()), |bencher| {
            bencher.iter(|| engine.gemm_i8_checksummed(&a, &b).unwrap());
        });
        group.bench_function(format!("{}_two_pass", kind.label()), |bencher| {
            bencher.iter(|| engine.gemm_i8_checksummed_two_pass(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_detector_consumption(c: &mut Criterion) {
    // What the protected pipeline pays per ABFT inspection: with the fused engine output a
    // detector reads the bundled checksums (O(n)); the old path re-derived them from the raw
    // matrices on every inspection (O(mk + kn + mn)). This is where the fused-checksum
    // refactor pays off — the checksums themselves ride the GEMM pass at ~zero marginal
    // cost (see the `checksummed_gemm_256` group).
    use realm_abft::classical::ClassicalAbft;
    use realm_abft::detector::AbftDetector;
    let mut group = c.benchmark_group("detector_inspect_256");
    group.sample_size(20);
    let n = 256usize;
    let w = random_i8(7, n, n);
    let x = random_i8(8, n, n);
    let engine = EngineKind::Parallel.build();
    let fused = engine.gemm_i8_checksummed(&w, &x).unwrap();
    let acc = fused.acc().clone();
    let detector = ClassicalAbft::new();
    group.bench_function("two_pass_inspect", |bencher| {
        bencher.iter(|| detector.inspect(&w, &x, &acc));
    });
    group.bench_function("fused_inspect", |bencher| {
        bencher.iter(|| detector.inspect_checksummed(&fused));
    });
    group.finish();
}

fn report_simd_speedup(_c: &mut Criterion) {
    // Not a timing benchmark: measures the SIMD microkernel against the blocked kernel at
    // the paper-scale 256³ GEMM and asserts the tentpole's >=1.8x contract whenever the
    // AVX2 path is dispatched. On hosts where the portable fallback runs, the measurement
    // still prints (so regressions stay visible) but the assert is skipped — the contract
    // is about the microkernel, not the autovectorizer's mood.
    let n = 256usize;
    let a = random_i8(9, n, n);
    let b = random_i8(10, n, n);
    let blocked = EngineKind::Blocked.build();
    let simd = EngineKind::Simd.build();
    let accelerated = realm_tensor::simd::simd_accelerated();
    let best_of = |engine: &std::sync::Arc<dyn realm_tensor::GemmEngine>| {
        for _ in 0..3 {
            engine.gemm_i8(&a, &b).unwrap();
        }
        let mut best = f64::INFINITY;
        for _ in 0..15 {
            let start = Instant::now();
            std::hint::black_box(engine.gemm_i8(&a, &b).unwrap());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let blocked_s = best_of(&blocked);
    let simd_s = best_of(&simd);
    let speedup = blocked_s / simd_s;
    println!(
        "simd dispatch: {} — gemm_i8 256³: blocked {:.3} ms, simd {:.3} ms, {speedup:.2}x",
        simd_dispatch_label(),
        blocked_s * 1e3,
        simd_s * 1e3,
    );
    if accelerated {
        assert!(
            speedup >= 1.8,
            "AVX2 microkernel must deliver >=1.8x over the blocked kernel at 256³ \
             (got {speedup:.2}x)"
        );
    } else {
        println!("(>=1.8x assertion skipped: AVX2 path not dispatched on this run)");
    }
}

criterion_group!(
    benches,
    bench_backends,
    bench_fused_vs_two_pass,
    bench_fused_decode_shape,
    bench_detector_consumption,
    report_simd_speedup
);
criterion_main!(benches);
