//! Tensor-parallel scaling of the checksummed GEMM hot path.
//!
//! Measures [`ShardedLinear`] — the column-sharded fused-checksum GEMM dispatched across a
//! persistent [`TpGroup`] rank pool — against the unsharded engine on the two shapes that
//! matter: a large-layer prefill GEMM (8×2048×2048, weights too big for L2) and the skinny
//! decode GEMV (1×2048×2048). The `tp_failover` group prices a whole-shard kill: every
//! measured dispatch pays one inline stripe recompute, the worst-case step a serving
//! engine survives without dropping a request.
//!
//! `report_tp_speedup` asserts the tentpole's scaling contract — tp4 must deliver ≥1.6×
//! over tp1 on the checksummed large-layer shape — whenever the host has ≥4 hardware
//! threads. On smaller hosts the measurement still prints (regressions stay visible) but
//! the assert is skipped: the contract is about parallel scaling, not a time-sliced core.
//! Run with `REALM_BENCH_JSON=BENCH_gemm.json cargo bench --bench tp_scaling` to refresh
//! the committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use realm_tensor::engine::{ChecksummedGemm, EngineKind};
use realm_tensor::{rng, MatI8, PackedMatI8, ShardFault, ShardedLinear, TpGroup};
use std::sync::Arc;
use std::time::Instant;

fn random_i8(seed: u64, rows: usize, cols: usize) -> MatI8 {
    let mut r = rng::seeded(seed);
    MatI8::from_fn(rows, cols, |_, _| r.gen_range(-128i16..=127) as i8)
}

/// A `ShardedLinear` over `degree` persistent ranks on the single-threaded SIMD engine —
/// the ranks themselves are the parallelism being measured.
fn sharded(degree: usize, weight: &MatI8) -> ShardedLinear {
    let group = Arc::new(TpGroup::new(degree, EngineKind::Simd.build()));
    ShardedLinear::new(group, weight)
}

fn bench_tp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tp_scaling");
    group.sample_size(15);
    let weight = random_i8(1, 2048, 2048);
    let engine = EngineKind::Simd.build();
    let packed = PackedMatI8::from_mat(weight.clone());
    for (label, rows) in [("large8x2048", 8usize), ("decode1x2048", 1)] {
        let a = random_i8(2 + rows as u64, rows, 2048);
        // Unsharded baseline: the fused packed kernel the model runs at tp_degree=1.
        let mut dest = ChecksummedGemm::empty();
        let mut etw = Vec::new();
        group.bench_function(format!("checksummed_{label}/unsharded"), |bencher| {
            bencher.iter(|| {
                engine
                    .gemm_i8_packed_checksummed_into(&a, &packed, &mut dest, &mut etw)
                    .unwrap()
            });
        });
        for degree in [1usize, 2, 4] {
            let lin = sharded(degree, &weight);
            let mut dest = ChecksummedGemm::empty();
            lin.gemm_checksummed_into(&a, true, &mut dest).unwrap();
            group.bench_function(format!("checksummed_{label}/tp{degree}"), |bencher| {
                bencher.iter(|| lin.gemm_checksummed_into(&a, true, &mut dest).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_failover_cost(c: &mut Criterion) {
    // What a dispatch costs when a whole rank dies under it: each iteration re-arms a
    // one-shot kill on shard 0, so every measured GEMM detects the unresponsive rank and
    // recomputes its column stripe inline. Compare against the clean rows to price the
    // failover a serving engine absorbs without dropping the request.
    let mut group = c.benchmark_group("tp_failover");
    group.sample_size(15);
    let weight = random_i8(11, 2048, 2048);
    let a = random_i8(12, 8, 2048);
    for degree in [2usize, 4] {
        let lin = sharded(degree, &weight);
        let mut dest = ChecksummedGemm::empty();
        lin.gemm_checksummed_into(&a, true, &mut dest).unwrap();
        group.bench_function(format!("clean/tp{degree}"), |bencher| {
            bencher.iter(|| lin.gemm_checksummed_into(&a, true, &mut dest).unwrap());
        });
        group.bench_function(format!("shard_killed/tp{degree}"), |bencher| {
            bencher.iter(|| {
                lin.group().inject_shard_fault(0, ShardFault::Kill, 1);
                lin.gemm_checksummed_into(&a, true, &mut dest).unwrap()
            });
        });
    }
    group.finish();
}

fn report_tp_speedup(_c: &mut Criterion) {
    // Not a timing benchmark: measures tp4 against tp1 on the checksummed large-layer
    // GEMM and asserts the tentpole's >=1.6x scaling contract whenever at least 4
    // hardware threads exist to scale onto. The measurement always prints.
    let weight = random_i8(21, 2048, 2048);
    let a = random_i8(22, 8, 2048);
    let best_of = |degree: usize| {
        let lin = sharded(degree, &weight);
        let mut dest = ChecksummedGemm::empty();
        for _ in 0..3 {
            lin.gemm_checksummed_into(&a, true, &mut dest).unwrap();
        }
        let mut best = f64::INFINITY;
        for _ in 0..15 {
            let start = Instant::now();
            lin.gemm_checksummed_into(&a, true, &mut dest).unwrap();
            std::hint::black_box(dest.acc());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let tp1 = best_of(1);
    let tp4 = best_of(4);
    let speedup = tp1 / tp4;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "tp scaling: checksummed 8×2048×2048 — tp1 {:.3} ms, tp4 {:.3} ms, {speedup:.2}x \
         ({threads} hardware thread(s))",
        tp1 * 1e3,
        tp4 * 1e3,
    );
    if threads >= 4 {
        assert!(
            speedup >= 1.6,
            "tp4 must deliver >=1.6x over tp1 on the checksummed large-layer GEMM \
             (got {speedup:.2}x)"
        );
    } else {
        println!("(>=1.6x assertion skipped: only {threads} hardware thread(s))");
    }
}

criterion_group!(
    benches,
    bench_tp_scaling,
    bench_failover_cost,
    report_tp_speedup
);
criterion_main!(benches);
