//! End-to-end benchmark of protected inference: the cost of running a task evaluation through
//! the injector + protector hook chain for each protection scheme. This is the software
//! analogue of the paper's runtime-overhead claim: ABFT detection adds little to the GEMM
//! work, and statistical ABFT avoids most of classical ABFT's recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use realm_core::pipeline::{PipelineConfig, ProtectedPipeline};
use realm_eval::wikitext::WikitextTask;
use realm_llm::{config::ModelConfig, model::Model};
use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};

fn bench_protected_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("protected_pipeline");
    group.sample_size(10);
    let model = Model::new(&ModelConfig::tiny_opt(), 3).expect("valid preset");
    let task = WikitextTask::quick(model.language(), 3);
    let config = PipelineConfig {
        array: SystolicArray::small(Dataflow::WeightStationary),
        ..PipelineConfig::default()
    };
    let pipeline = ProtectedPipeline::new(&model, config);
    for scheme in [
        ProtectionScheme::None,
        ProtectionScheme::ClassicalAbft,
        ProtectionScheme::ApproxAbft,
        ProtectionScheme::StatisticalAbft,
    ] {
        group.bench_with_input(
            BenchmarkId::new("voltage_0.66", scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| pipeline.run(&task, scheme, 0.66, 7).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_generation_under_protection(c: &mut Criterion) {
    let mut group = c.benchmark_group("protected_generation");
    group.sample_size(10);
    let model = Model::new(&ModelConfig::tiny_llama(), 5).expect("valid preset");
    let prompt = [1u32, 5, 9, 2];
    group.bench_function("clean_generate_8", |b| {
        b.iter(|| {
            model
                .generate(&prompt, 8, &mut realm_llm::NoopHook)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_protected_pipeline,
    bench_generation_under_protection
);
criterion_main!(benches);
