//! Microbenchmarks of the quantized GEMM substrate: the INT8×INT8→INT32 kernel, the f32
//! reference kernel, and the quantize/de-quantize path around them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use realm_tensor::{gemm, quant, rng, MatF32, MatI8};

fn random_i8(seed: u64, rows: usize, cols: usize) -> MatI8 {
    use rand::Rng;
    let mut r = rng::seeded(seed);
    MatI8::from_fn(rows, cols, |_, _| r.gen_range(-100..=100))
}

fn bench_gemm_i8(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_i8");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let a = random_i8(1, n, n);
        let b = random_i8(2, n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| gemm::gemm_i8(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_gemm_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f32");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut r = rng::seeded(3);
        let a = rng::gaussian_matrix(&mut r, n, n, 0.0, 1.0);
        let b = rng::gaussian_matrix(&mut r, n, n, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| gemm::gemm_f32(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantization");
    group.sample_size(30);
    let mut r = rng::seeded(5);
    let x: MatF32 = rng::outlier_matrix(&mut r, 64, 256, 1.0, 0.03, 24.0);
    group.bench_function("quantize_symmetric_64x256", |bencher| {
        bencher.iter(|| quant::quantize_symmetric(&x));
    });
    let (q, scale) = quant::quantize_symmetric(&x);
    group.bench_function("dequantize_64x256", |bencher| {
        bencher.iter(|| quant::dequantize(&q, scale));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm_i8, bench_gemm_f32, bench_quantization);
criterion_main!(benches);
