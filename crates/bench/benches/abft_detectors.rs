//! Microbenchmarks of the ABFT detectors: the per-GEMM decision cost of classical ABFT,
//! ApproxABFT and the ReaLM statistical detector, plus the hardware statistical-unit model.
//! These quantify the (tiny) algorithmic cost of detection relative to the GEMM itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use realm_abft::statistical_unit::StatisticalUnit;
use realm_abft::{
    checksum, AbftDetector, ApproxAbft, ClassicalAbft, CriticalRegion, StatisticalAbft,
};
use realm_tensor::{gemm, rng, MatI32, MatI8};

fn corrupted_case(seed: u64, n: usize, errors: usize) -> (MatI8, MatI8, MatI32) {
    use rand::Rng;
    let mut r = rng::seeded(seed);
    let w = MatI8::from_fn(n, n, |_, _| r.gen_range(-60..=60));
    let x = MatI8::from_fn(n, n, |_, _| r.gen_range(-60..=60));
    let mut acc = gemm::gemm_i8(&w, &x).unwrap();
    for _ in 0..errors {
        let row = r.gen_range(0..n);
        let col = r.gen_range(0..n);
        let bit = r.gen_range(16..31);
        acc[(row, col)] ^= 1 << bit;
    }
    (w, x, acc)
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("abft_detectors");
    group.sample_size(30);
    for &n in &[64usize, 128] {
        let (w, x, acc) = corrupted_case(7, n, 3);
        let classical = ClassicalAbft::new();
        let approx = ApproxAbft::paper_default();
        let statistical = StatisticalAbft::resilient();
        group.bench_with_input(BenchmarkId::new("classical", n), &n, |b, _| {
            b.iter(|| classical.inspect(&w, &x, &acc));
        });
        group.bench_with_input(BenchmarkId::new("approx", n), &n, |b, _| {
            b.iter(|| approx.inspect(&w, &x, &acc));
        });
        group.bench_with_input(BenchmarkId::new("statistical", n), &n, |b, _| {
            b.iter(|| statistical.inspect(&w, &x, &acc));
        });
    }
    group.finish();
}

fn bench_checksum_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum_math");
    group.sample_size(30);
    let (w, x, acc) = corrupted_case(9, 128, 2);
    group.bench_function("column_deviations_128", |b| {
        b.iter(|| checksum::column_deviations(&w, &x, &acc));
    });
    let deviations = checksum::column_deviations(&w, &x, &acc);
    group.bench_function("statistical_decision_from_deviations", |b| {
        let detector = StatisticalAbft::resilient();
        b.iter(|| detector.evaluate_deviations(&deviations));
    });
    group.finish();
}

fn bench_statistical_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("statistical_unit");
    group.sample_size(30);
    let unit = StatisticalUnit::paper_256(CriticalRegion::resilient_default());
    let expected: Vec<i64> = (0..256).map(|i| (i as i64) * 1000 - 100_000).collect();
    let mut observed = expected.clone();
    observed[17] += 1 << 22;
    observed[200] -= 1 << 18;
    group.bench_function("process_256_columns", |b| {
        b.iter(|| unit.process(&observed, &expected));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detectors,
    bench_checksum_math,
    bench_statistical_unit
);
criterion_main!(benches);
