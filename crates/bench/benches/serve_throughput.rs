//! Continuous batching vs lockstep drain: serving throughput at queue depth 16.
//!
//! This is the perf contract of the serving tentpole. Sixteen requests with ragged
//! generation budgets are served through a 4-slot window two ways:
//!
//! * **lockstep drain** — four batches of four via `BatchScheduler::run`; a slot whose
//!   sequence finished early sits empty until the whole chunk drains;
//! * **continuous** — `BatchScheduler::run_with_slots` (and the full `ServeEngine` with its
//!   queue and channels) releases a slot the moment its sequence completes and admits the
//!   next request into it, so the number of lockstep decode forwards collapses.
//!
//! Both produce bit-identical tokens; only wall-clock changes. All three arms run the
//! same always-on statistical protector so the ratios isolate scheduling, not protection.
//! The measured tokens/s land in the criterion report and (via
//! `report_serving_throughput`) in the committed `serving` section of `BENCH_gemm.json`;
//! the ≥1.15× speedup is asserted here so a regression fails the build of this bench.
//! (The contract was ≥1.3× before the SIMD PR fixed the per-GEMM `available_parallelism`
//! dispatch overhead; that fix made every arm ~6× faster and the relative win of running
//! fewer decode forwards correspondingly smaller — the absolute win per request grew.)

use criterion::{criterion_group, criterion_main, Criterion};
use realm_core::SchemeProtector;
use realm_inject::{error_model::MagFreqModel, injector::ErrorInjector, targeting::Target};
use realm_llm::batch::{BatchRequest, BatchScheduler};
use realm_llm::{config::ModelConfig, model::Model, Component};
use realm_serve::{AdaptiveConfig, ProtectionPolicy, ServeConfig, ServeEngine, ServeRequest};
use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm_tensor::EngineKind;
use std::time::Instant;

const QUEUE_DEPTH: usize = 16;
const SLOTS: usize = 4;
/// Ragged budgets: each 4-chunk contains one long request that pins its lockstep batch.
const BUDGETS: [usize; 4] = [1, 1, 2, 24];

/// The serving benches measure the *scheduling* layer (slot reuse, admission, queueing),
/// so the model is pinned to the blocked-parallel kernel the 1.3x contract was calibrated
/// on: swapping in a faster GEMM kernel (e.g. the SIMD default) shrinks every arm's GEMM
/// time alike and turns these ratios into a measurement of scheduler overhead instead.
fn scheduling_config() -> ModelConfig {
    let mut config = ModelConfig::tiny_opt();
    config.engine = EngineKind::Parallel;
    config
}

fn requests() -> Vec<BatchRequest> {
    (0..QUEUE_DEPTH)
        .map(|i| {
            let prompt: Vec<u32> = (0..3 + i % 5)
                .map(|t| ((i * 7 + t * 3) % 60) as u32)
                .collect();
            BatchRequest::new(prompt, BUDGETS[i % BUDGETS.len()])
        })
        .collect()
}

fn total_tokens() -> usize {
    requests().iter().map(|r| r.max_new_tokens).sum()
}

/// The always-on statistical protector `ServeEngine` runs by default. The raw scheduler
/// arms run the same one, so all three arms pay identical per-GEMM detection cost and the
/// measured ratios isolate the *scheduling* machinery (slot reuse, queueing, streaming).
/// Before the SIMD PR the raw arms ran unprotected — invisible when per-GEMM dispatch
/// overhead dominated, but an unfair handicap once that overhead was fixed.
fn protector() -> SchemeProtector {
    SchemeProtector::with_default_regions(
        ProtectionScheme::StatisticalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    )
}

fn run_lockstep_drain(model: &Model, requests: &[BatchRequest]) -> usize {
    let scheduler = BatchScheduler::new(model);
    let mut hook = protector();
    let mut tokens = 0;
    for chunk in requests.chunks(SLOTS) {
        for output in scheduler.run(chunk, &mut hook).unwrap() {
            tokens += output.tokens.len();
        }
    }
    tokens
}

fn run_continuous(model: &Model, requests: &[BatchRequest]) -> usize {
    BatchScheduler::new(model)
        .run_with_slots(requests, SLOTS, &mut protector())
        .unwrap()
        .iter()
        .map(|o| o.tokens.len())
        .sum()
}

fn run_serve_engine(model: &Model, requests: &[BatchRequest]) -> usize {
    let mut engine = ServeEngine::new(model, ServeConfig::with_slots(SLOTS));
    let receivers: Vec<_> = requests
        .iter()
        .map(|r| {
            engine
                .submit(ServeRequest::new(r.prompt.clone(), r.max_new_tokens))
                .unwrap()
                .1
        })
        .collect();
    engine.run_until_idle().unwrap();
    drop(receivers);
    engine.stats().tokens_generated as usize
}

fn bench_serving(c: &mut Criterion) {
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let requests = requests();
    let expected = total_tokens();
    let mut group = c.benchmark_group("serving_q16");
    group.sample_size(15);
    group.bench_function("lockstep_drain", |b| {
        b.iter(|| {
            let tokens = run_lockstep_drain(&model, &requests);
            assert_eq!(tokens, expected);
            tokens
        });
    });
    group.bench_function("continuous", |b| {
        b.iter(|| {
            let tokens = run_continuous(&model, &requests);
            assert_eq!(tokens, expected);
            tokens
        });
    });
    group.bench_function("serve_engine", |b| {
        b.iter(|| {
            let tokens = run_serve_engine(&model, &requests);
            assert_eq!(tokens, expected);
            tokens
        });
    });
    group.finish();
}

fn report_serving_throughput(_c: &mut Criterion) {
    // Not a timing benchmark: measures tokens/s for the committed `serving` section of
    // BENCH_gemm.json and asserts the (re-based) >=1.15x continuous-batching contract.
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let requests = requests();
    let tokens = total_tokens() as f64;
    let reps = 7;

    let time = |f: &dyn Fn() -> usize| {
        // Warm up once, then take the best of `reps` to suppress scheduler noise.
        f();
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let lockstep = time(&|| run_lockstep_drain(&model, &requests));
    let continuous = time(&|| run_continuous(&model, &requests));
    let engine = time(&|| run_serve_engine(&model, &requests));

    let lockstep_tps = tokens / lockstep;
    let continuous_tps = tokens / continuous;
    let engine_tps = tokens / engine;
    println!(
        "serving throughput at queue depth {QUEUE_DEPTH} (slots {SLOTS}): \
         lockstep {lockstep_tps:.0} tok/s, continuous {continuous_tps:.0} tok/s \
         ({:.2}x), serve engine {engine_tps:.0} tok/s ({:.2}x)",
        continuous_tps / lockstep_tps,
        engine_tps / lockstep_tps
    );
    // Re-based from 1.3x when the per-GEMM dispatch-overhead fix (worker_count caching +
    // MACs gate before thread metadata) made all arms ~6x faster: fewer decode forwards
    // now saves proportionally less, measured ~1.23x on a 1-core host.
    assert!(
        continuous_tps / lockstep_tps >= 1.15,
        "continuous batching must deliver >=1.15x the lockstep-drain throughput \
         ({continuous_tps:.0} vs {lockstep_tps:.0} tok/s)"
    );
    // Batched admission prefill + the long-lived workspace closed most of the engine's
    // admission overhead: it used to trail the raw continuous scheduler by ~7%, now it
    // must stay within 7% (measured ~2%).
    assert!(
        engine_tps / continuous_tps >= 0.93,
        "the serve engine must stay within 7% of the raw continuous scheduler \
         ({engine_tps:.0} vs {continuous_tps:.0} tok/s)"
    );
}

/// Long prompts of the bimodal workload: big enough that a monolithic admission prefill
/// visibly parks every concurrent decode stream.
const LONG_PROMPT: usize = 512;
/// The chunked arm's per-step token budget (the contract's operating point).
const CHUNK_BUDGET: usize = 128;

fn bimodal_config() -> ModelConfig {
    let mut config = scheduling_config();
    config.max_seq_len = LONG_PROMPT + 64;
    config
}

/// One bimodal serving round: a short-prompt victim stream decodes on slot 0 while four
/// 512-token prompts arrive behind it, prefilled monolithically (`step_token_budget` 0)
/// or in budgeted chunks. Returns `(decode stall p99 in us, wall-clock seconds)` — the
/// stall p99 is the engine's own inter-commit gap percentile, i.e. the p99 TPOT any
/// in-flight stream observed.
fn run_bimodal(model: &Model, step_token_budget: usize) -> (f64, f64) {
    let mut engine = ServeEngine::new(
        model,
        ServeConfig {
            slots: 2,
            step_token_budget,
            ..ServeConfig::default()
        },
    );
    let victim = engine
        .submit(ServeRequest::new(vec![1, 2, 3, 4], 48))
        .unwrap()
        .1;
    let longs: Vec<_> = (0..4)
        .map(|i| {
            let prompt: Vec<u32> = (0..LONG_PROMPT)
                .map(|t| ((t * 11 + i * 17) % 60) as u32)
                .collect();
            engine.submit(ServeRequest::new(prompt, 4)).unwrap().1
        })
        .collect();
    let start = Instant::now();
    engine.run_until_idle().unwrap();
    let wall = start.elapsed().as_secs_f64();
    drop((victim, longs));
    (engine.stats().decode_stall_p99_us, wall)
}

fn bench_chunked_prefill(c: &mut Criterion) {
    let model = Model::new(&bimodal_config(), 5).unwrap();
    let mut group = c.benchmark_group("serving_chunked");
    group.sample_size(10);
    group.bench_function("monolithic_round", |b| b.iter(|| run_bimodal(&model, 0)));
    group.bench_function("chunked_round", |b| {
        b.iter(|| run_bimodal(&model, CHUNK_BUDGET))
    });
    group.finish();
}

fn report_chunked_prefill(_c: &mut Criterion) {
    // Not a timing benchmark: pins the head-of-line-blocking contract of the chunked
    // prefill tentpole. At budget 128 with 512-token prompts, the p99 inter-token stall
    // of in-flight decode streams must drop to <=0.6x the monolithic-admission stall
    // (in practice ~0.25x: a stalled step runs a ~128-row chunk instead of 512 rows).
    let model = Model::new(&bimodal_config(), 5).unwrap();
    let best = |budget: usize| {
        (0..3)
            .map(|_| run_bimodal(&model, budget))
            .fold((f64::INFINITY, f64::INFINITY), |a, b| {
                (a.0.min(b.0), a.1.min(b.1))
            })
    };
    let (mono_p99, mono_wall) = best(0);
    let (chunked_p99, chunked_wall) = best(CHUNK_BUDGET);
    println!(
        "bimodal serving ({LONG_PROMPT}-token prompts, budget {CHUNK_BUDGET}): \
         decode stall p99 monolithic {mono_p99:.0} us vs chunked {chunked_p99:.0} us \
         ({:.2}x), round wall {mono_wall:.3}s vs {chunked_wall:.3}s",
        chunked_p99 / mono_p99
    );
    assert!(
        chunked_p99 <= 0.6 * mono_p99,
        "chunked prefill must cut the p99 decode stall to <=0.6x monolithic \
         ({chunked_p99:.0} us vs {mono_p99:.0} us)"
    );
    println!("\nBENCH_gemm.json `serving_chunked` entries:");
    for (name, us) in [
        ("serving_chunked/stall_p99_monolithic", mono_p99),
        ("serving_chunked/stall_p99_chunked", chunked_p99),
    ] {
        let ns = (us * 1_000.0).round();
        println!(
            "    {{ \"name\": \"{name}\", \"best_ns\": {ns}, \"median_ns\": {ns}, \"iterations\": 3 }},"
        );
    }
}

/// Burst schedule of the adaptive-protection arms: 16 faulty steps, 16 clean steps.
/// The burst is long relative to the controller's two-step escalation latency (one
/// observe to elevate, one more to escalate), so nearly all of each burst runs under
/// escalated protection — the fraction lost to the ladder is what separates adaptive
/// recovery from classical's perfect rate.
const BURST_STEPS: u64 = 16;
const BURST_GAP: u64 = 16;

/// The burst-arm fault hook: one +2^30 error per targeted GEMM during each burst, on
/// one sensitive component (`O` — always repaired, fuels the detection window) and one
/// resilient component (`Fc1` — tolerated by statistical ABFT, repaired by classical).
/// The recovery-rate gap between the static arms is entirely the `Fc1` faults; the
/// adaptive arm closes it by escalating to classical while the burst is hot.
fn burst_injector() -> ErrorInjector<MagFreqModel> {
    ErrorInjector::new(
        MagFreqModel::new(1 << 30, 1),
        Target::new().components([Component::O, Component::Fc1]),
        11,
    )
    .with_burst(BURST_STEPS, BURST_GAP)
}

/// Fast-reacting controller for the burst workload: one attributed detection elevates,
/// two escalate, and a short clean window steps back down between bursts.
fn bench_adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        window_steps: 4,
        elevate_detections: 1,
        escalate_detections: 2,
        clean_window_steps: 4,
        hysteresis_steps: 1,
        ..AdaptiveConfig::enabled()
    }
}

struct ProtectedRound {
    tokens: usize,
    detections: u64,
    recoveries: u64,
    escalations: u64,
    wall: f64,
}

/// One full 16-request round through the engine under the burst injector, every request
/// pinned to `policy`, with the adaptive controller configured by `adaptive`.
fn run_protected_round(
    model: &Model,
    policy: ProtectionPolicy,
    adaptive: AdaptiveConfig,
) -> ProtectedRound {
    let mut engine = ServeEngine::new(
        model,
        ServeConfig::with_slots(SLOTS).with_adaptive(adaptive),
    )
    .with_fault_hook(Box::new(burst_injector()));
    let receivers: Vec<_> = requests()
        .iter()
        .map(|r| {
            engine
                .submit(ServeRequest::new(r.prompt.clone(), r.max_new_tokens).with_policy(policy))
                .unwrap()
                .1
        })
        .collect();
    let start = Instant::now();
    engine.run_until_idle().unwrap();
    let wall = start.elapsed().as_secs_f64();
    drop(receivers);
    let stats = engine.stats();
    ProtectedRound {
        tokens: stats.tokens_generated as usize,
        detections: stats.detections,
        recoveries: stats.recoveries,
        escalations: stats.policy_escalations,
        wall,
    }
}

fn bench_adaptive_protection(c: &mut Criterion) {
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let expected = total_tokens();
    let mut group = c.benchmark_group("adaptive_protection");
    group.sample_size(10);
    group.bench_function("static_statistical", |b| {
        b.iter(|| {
            let round = run_protected_round(
                &model,
                ProtectionPolicy::statistical(),
                AdaptiveConfig::default(),
            );
            assert_eq!(round.tokens, expected);
            round.tokens
        });
    });
    group.bench_function("static_classical", |b| {
        b.iter(|| {
            let round = run_protected_round(
                &model,
                ProtectionPolicy::classical(),
                AdaptiveConfig::default(),
            );
            assert_eq!(round.tokens, expected);
            round.tokens
        });
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let round = run_protected_round(
                &model,
                ProtectionPolicy::statistical(),
                bench_adaptive_config(),
            );
            assert_eq!(round.tokens, expected);
            round.tokens
        });
    });
    group.finish();
}

fn report_adaptive_protection(_c: &mut Criterion) {
    // Not a timing benchmark: pins the adaptive-protection contract under the burst
    // injector. Adaptive must deliver at least 0.95x the static-statistical tokens/s
    // (the protection it adds is paid only while bursts are hot) while recovering at
    // least 0.9x classical's recovery rate (statistical alone tolerates every resilient
    // Fc1 fault and lands strictly lower).
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let tokens = total_tokens() as f64;
    // The arms are interleaved rep by rep (not measured back to back) so slow drift on
    // a shared box — a co-tenant burning CPU for half a second — taxes every arm alike
    // instead of one arm's whole measurement window; the asserted ratios are between
    // per-arm best-of floors, which interleaving makes directly comparable.
    let reps = 15;
    let arms = [
        (ProtectionPolicy::statistical(), AdaptiveConfig::default()),
        (ProtectionPolicy::classical(), AdaptiveConfig::default()),
        (ProtectionPolicy::statistical(), bench_adaptive_config()),
    ];
    let mut walls = [f64::INFINITY; 3];
    let mut rounds: Vec<ProtectedRound> = arms
        .iter()
        .map(|&(policy, adaptive)| run_protected_round(&model, policy, adaptive)) // warm-up
        .collect();
    for _ in 0..reps {
        for (i, &(policy, adaptive)) in arms.iter().enumerate() {
            let round = run_protected_round(&model, policy, adaptive);
            walls[i] = walls[i].min(round.wall);
            rounds[i] = round;
        }
    }
    let [statistical_tps, classical_tps, adaptive_tps] = walls.map(|w| tokens / w);
    let adaptive = rounds.pop().unwrap();
    let classical = rounds.pop().unwrap();
    let statistical = rounds.pop().unwrap();

    let rate = |r: &ProtectedRound| r.recoveries as f64 / r.detections.max(1) as f64;
    let (statistical_rate, classical_rate, adaptive_rate) =
        (rate(&statistical), rate(&classical), rate(&adaptive));
    println!(
        "adaptive protection under a {BURST_STEPS}/{BURST_GAP} burst injector: \
         statistical {statistical_tps:.0} tok/s (recovery {statistical_rate:.3}), \
         classical {classical_tps:.0} tok/s (recovery {classical_rate:.3}), \
         adaptive {adaptive_tps:.0} tok/s (recovery {adaptive_rate:.3}, \
         {} escalations)",
        adaptive.escalations
    );
    assert!(
        adaptive.escalations >= 2,
        "the burst workload must drive repeated escalations ({})",
        adaptive.escalations
    );
    assert!(
        adaptive_tps >= 0.95 * statistical_tps,
        "adaptive protection must stay within 5% of static statistical throughput \
         ({adaptive_tps:.0} vs {statistical_tps:.0} tok/s)"
    );
    assert!(
        adaptive_rate >= 0.9 * classical_rate,
        "adaptive protection must match classical's recovery rate within 10% \
         ({adaptive_rate:.3} vs {classical_rate:.3})"
    );
    assert!(
        statistical_rate < adaptive_rate,
        "static statistical must recover strictly less than adaptive \
         ({statistical_rate:.3} vs {adaptive_rate:.3})"
    );
    println!("\nBENCH_gemm.json `adaptive_protection` entries:");
    for (name, value) in [
        ("adaptive_protection/tps_statistical", statistical_tps),
        ("adaptive_protection/tps_classical", classical_tps),
        ("adaptive_protection/tps_adaptive", adaptive_tps),
        (
            "adaptive_protection/recovery_permille_statistical",
            statistical_rate * 1_000.0,
        ),
        (
            "adaptive_protection/recovery_permille_classical",
            classical_rate * 1_000.0,
        ),
        (
            "adaptive_protection/recovery_permille_adaptive",
            adaptive_rate * 1_000.0,
        ),
    ] {
        let value = value.round();
        println!(
            "    {{ \"name\": \"{name}\", \"best_ns\": {value}, \"median_ns\": {value}, \"iterations\": {reps} }},"
        );
    }
}

// The chunked report runs before the throughput report: the throughput ratios are the
// noisier contract (scheduler wall-clock on a shared box), and a flake there must not
// mask the chunked-prefill gate's output. The adaptive report sits between them for the
// same reason: its recovery-rate contract is deterministic, only its 5% throughput bound
// is wall-clock sensitive.
criterion_group!(
    benches,
    bench_serving,
    bench_chunked_prefill,
    report_chunked_prefill,
    bench_adaptive_protection,
    report_adaptive_protection,
    report_serving_throughput
);
criterion_main!(benches);
