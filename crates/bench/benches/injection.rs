//! Microbenchmarks of the error-injection framework: the cost of the fault models themselves
//! and the end-to-end overhead an injector hook adds to a model forward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use realm_inject::{
    error_model::{BitFlipModel, ErrorModel, FixedBitModel, MagFreqModel},
    injector::ErrorInjector,
    targeting::Target,
};
use realm_llm::{config::ModelConfig, model::Model, Component, NoopHook};
use realm_tensor::{rng, MatI32};

fn bench_error_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_models");
    group.sample_size(30);
    let acc = MatI32::filled(128, 128, 12345);
    for (label, ber) in [("ber_1e-6", 1e-6), ("ber_1e-3", 1e-3), ("ber_1e-2", 1e-2)] {
        let model = BitFlipModel::high_bits(ber);
        group.bench_with_input(BenchmarkId::new("bitflip", label), &ber, |b, _| {
            let mut r = rng::seeded(1);
            b.iter(|| {
                let mut a = acc.clone();
                model.corrupt(&mut r, &mut a)
            });
        });
    }
    let fixed = FixedBitModel::bit30(1e-3);
    group.bench_function("fixed_bit30_1e-3", |b| {
        let mut r = rng::seeded(2);
        b.iter(|| {
            let mut a = acc.clone();
            fixed.corrupt(&mut r, &mut a)
        });
    });
    let magfreq = MagFreqModel::new(1 << 20, 16);
    group.bench_function("magfreq_16x2^20", |b| {
        let mut r = rng::seeded(3);
        b.iter(|| {
            let mut a = acc.clone();
            magfreq.corrupt(&mut r, &mut a)
        });
    });
    group.finish();
}

fn bench_injected_prefill(c: &mut Criterion) {
    let mut group = c.benchmark_group("injected_prefill");
    group.sample_size(10);
    let model = Model::new(&ModelConfig::opt_1_3b_proxy(), 1).expect("valid preset");
    let prompt: Vec<u32> = (0..16u32).map(|t| t % 17).collect();

    group.bench_function("clean", |b| {
        b.iter(|| model.prefill(&prompt, &mut NoopHook).unwrap());
    });
    group.bench_function("with_injector_ber_1e-3", |b| {
        b.iter(|| {
            let mut injector = ErrorInjector::everywhere(BitFlipModel::high_bits(1e-3), 5);
            model.prefill(&prompt, &mut injector).unwrap()
        });
    });
    group.bench_function("with_targeted_injector", |b| {
        b.iter(|| {
            let mut injector = ErrorInjector::new(
                FixedBitModel::bit30(1e-3),
                Target::new().component(Component::O),
                5,
            );
            model.prefill(&prompt, &mut injector).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_error_models, bench_injected_prefill);
criterion_main!(benches);
