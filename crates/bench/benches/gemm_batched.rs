//! Batched vs sequential protected prefill: throughput and detector-inspection
//! amortisation at batch size 8.
//!
//! This is the perf contract of the batched-inference tentpole: a batch of 8 prompts run
//! through `Model::prefill_batch` shares one fused-checksum GEMM per shared component per
//! layer, so the ABFT detector inspects ≥2× fewer GEMMs per generated token than 8
//! sequential `Model::prefill` calls — while producing bit-identical logits. The inspection
//! counts are printed (and committed to `BENCH_gemm.json` as the `batched_inference`
//! section); the wall-clock numbers land in the criterion report. Run with
//! `REALM_BENCH_JSON=/tmp/bench.json cargo bench --bench gemm_batched` and merge into the
//! committed baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use realm_core::SchemeProtector;
use realm_llm::{config::ModelConfig, model::Model, NoopHook};
use realm_systolic::{Dataflow, ProtectionScheme, SystolicArray};
use realm_tensor::EngineKind;

const BATCH: usize = 8;
const PROMPT_LEN: usize = 16;

/// Pinned to the blocked-parallel kernel: this bench contracts the batching layer's
/// amortisation (inspections per token, prefill stacking), which must stay comparable
/// across kernel changes rather than re-measure whatever the default GEMM backend is.
fn scheduling_config() -> ModelConfig {
    let mut config = ModelConfig::tiny_opt();
    config.engine = EngineKind::Parallel;
    config
}

fn prompts() -> Vec<Vec<u32>> {
    (0..BATCH)
        .map(|i| {
            (0..PROMPT_LEN)
                .map(|t| ((i * 7 + t * 3) % 60) as u32)
                .collect()
        })
        .collect()
}

fn protector() -> SchemeProtector {
    SchemeProtector::with_default_regions(
        ProtectionScheme::ClassicalAbft,
        SystolicArray::small(Dataflow::WeightStationary),
    )
}

fn bench_protected_prefill(c: &mut Criterion) {
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let prompts = prompts();
    let mut group = c.benchmark_group("protected_prefill_b8");
    group.sample_size(15);
    group.bench_function("sequential", |bencher| {
        bencher.iter(|| {
            let mut p = protector();
            for prompt in &prompts {
                model.prefill(prompt, &mut p).unwrap();
            }
            p.stats().gemms_inspected
        });
    });
    group.bench_function("batched", |bencher| {
        bencher.iter(|| {
            let mut p = protector();
            model.prefill_batch(&prompts, &mut p).unwrap();
            p.stats().gemms_inspected
        });
    });
    group.finish();
}

fn bench_unprotected_prefill(c: &mut Criterion) {
    // Batching pays even without a protector: fewer, larger GEMMs per forward.
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let prompts = prompts();
    let mut group = c.benchmark_group("unprotected_prefill_b8");
    group.sample_size(15);
    group.bench_function("sequential", |bencher| {
        bencher.iter(|| {
            for prompt in &prompts {
                model.prefill(prompt, &mut NoopHook).unwrap();
            }
        });
    });
    group.bench_function("batched", |bencher| {
        bencher.iter(|| model.prefill_batch(&prompts, &mut NoopHook).unwrap());
    });
    group.finish();
}

fn report_inspection_amortisation(_c: &mut Criterion) {
    // Not a timing benchmark: counts detector inspections per token for the committed
    // `batched_inference` baseline in BENCH_gemm.json.
    let model = Model::new(&scheduling_config(), 5).unwrap();
    let prompts = prompts();
    let tokens = (BATCH * PROMPT_LEN) as f64;

    let mut sequential = protector();
    for prompt in &prompts {
        model.prefill(prompt, &mut sequential).unwrap();
    }
    let mut batched = protector();
    model.prefill_batch(&prompts, &mut batched).unwrap();

    let seq_per_token = sequential.stats().gemms_inspected as f64 / tokens;
    let batch_per_token = batched.stats().gemms_inspected as f64 / tokens;
    println!(
        "inspections/token at batch {BATCH}: sequential {seq_per_token:.4} \
         batched {batch_per_token:.4} ({:.2}x fewer)",
        seq_per_token / batch_per_token
    );
    assert!(
        seq_per_token / batch_per_token >= 2.0,
        "batched prefill must amortise detector inspections by >=2x at batch {BATCH}"
    );
}

criterion_group!(
    benches,
    bench_protected_prefill,
    bench_unprotected_prefill,
    report_inspection_amortisation
);
criterion_main!(benches);
