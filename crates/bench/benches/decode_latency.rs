//! Decode-loop latency with and without workspace reuse: the perf contract of the
//! workspace-planned forward path.
//!
//! Two ways to run the *identical* greedy decode loop on the reference backend:
//!
//! * **allocating** — a `Workspace::without_reuse()` arena, whose recycles drop buffers
//!   instead of pooling them: every GEMM of every layer allocates its quantized operands,
//!   accumulator, checksum vectors and conversion output fresh, exactly the pre-refactor
//!   per-GEMM allocation profile (same code path, so the comparison isolates reuse);
//! * **reused** — the same `_ws` entry points over one long-lived pooling `Workspace`,
//!   which is allocation-free after warmup (`tests/zero_alloc.rs` proves zero allocations
//!   per step).
//!
//! Both produce bit-identical tokens (`tests/workspace_parity.rs`); only wall-clock
//! changes. Measured tokens/s at batch 1/4/8 land in the criterion report and (via
//! `report_decode_latency`) in the committed `decode_latency` section of
//! `BENCH_gemm.json`; the ≥1.10× speedup for the reused path at batch 1 is asserted here
//! so a regression fails this bench's build.
//!
//! The `decode_packed` group and `report_decode_packed` pin the decode-shape speed tier:
//! packed vs unpacked weight paths at the model level, and a checksummed decode-shape
//! GEMV microbenchmark asserting the packed kernel's ≥1.8× contract over the unpacked
//! SIMD path (recorded in the `decode_packed` section of `BENCH_gemm.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use realm_llm::model::argmax_with_margin;
use realm_llm::{config::ModelConfig, model::Model, NoopHook};
use realm_tensor::engine::{ChecksummedGemm, GemmEngine};
use realm_tensor::{rng, EngineKind, MatI32, MatI8, PackedMatI8, SimdEngine, Workspace};
use std::time::Instant;

const DECODE_STEPS: usize = 24;
const BATCH_SIZES: [usize; 3] = [1, 4, 8];

/// A decode-bound micro model: GEMV-like decode shapes are where the fixed per-GEMM
/// scratch cost (quantize + accumulate + checksum + convert buffers) is the largest
/// fraction of a step, so this is the configuration the workspace contract is pinned on.
/// Larger hidden sizes shift time into the multiply kernels and the relative win shrinks
/// (the absolute per-token saving stays).
fn model() -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.name = "tiny-opt-8".into();
    config.engine = EngineKind::Reference;
    config.hidden_size = 8;
    config.num_heads = 1;
    config.ffn_size = 16;
    config.vocab_size = 32;
    config.max_seq_len = 128;
    Model::new(&config, 7).unwrap()
}

fn prompts(batch: usize) -> Vec<Vec<u32>> {
    (0..batch)
        .map(|i| (0..2).map(|t| ((i * 7 + t * 3) % 30) as u32).collect())
        .collect()
}

/// One full decode loop over the provided scratch workspace; returns tokens generated.
/// The arena decides the arm: a long-lived pooling `Workspace` (reused, allocation-free
/// after its first loop) or a `Workspace::without_reuse()` (every checkout allocates).
fn run_decode(model: &Model, batch: usize, ws: &mut Workspace) -> usize {
    let (logits, mut cache) = model
        .prefill_batch_ws(&prompts(batch), &mut NoopHook, ws)
        .unwrap();
    let mut next: Vec<Option<u32>> = logits
        .iter()
        .map(|l| Some(argmax_with_margin(l.row(l.rows() - 1)).0))
        .collect();
    let mut tokens = 0;
    for _ in 0..DECODE_STEPS {
        let step_logits = model
            .decode_step_batch_ws(&next, &mut cache, &mut NoopHook, ws)
            .unwrap();
        for (slot, logits) in step_logits.into_iter().enumerate() {
            let logits = logits.expect("all sequences stay active");
            next[slot] = Some(argmax_with_margin(&logits).0);
            tokens += 1;
            ws.recycle_vec_f32(logits);
        }
        ws.reset();
    }
    tokens
}

fn bench_decode(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("decode_latency");
    group.sample_size(15);
    for batch in BATCH_SIZES {
        let mut no_reuse = Workspace::without_reuse();
        group.bench_function(format!("allocating/b{batch}"), |b| {
            b.iter(|| run_decode(&model, batch, &mut no_reuse));
        });
        // Long-lived like the serving engine's: pools stay warm across iterations.
        let mut ws = Workspace::new();
        group.bench_function(format!("reused/b{batch}"), |b| {
            b.iter(|| run_decode(&model, batch, &mut ws));
        });
    }
    group.finish();
}

fn bench_decode_backends(c: &mut Criterion) {
    // The same reused-workspace decode loop across GEMM backends: where the SIMD
    // microkernel lands on GEMV-like decode shapes (the per-GEMM fixed costs shrink its
    // relative win versus the 256³ headline, which is exactly why it is measured here).
    let mut group = c.benchmark_group("decode_backends");
    group.sample_size(15);
    for kind in [
        EngineKind::Reference,
        EngineKind::Blocked,
        EngineKind::Simd,
        EngineKind::SimdParallel,
    ] {
        let mut config = ModelConfig::tiny_opt();
        config.engine = kind;
        config.max_seq_len = 128;
        let model = Model::new(&config, 7).unwrap();
        for batch in [1usize, 8] {
            let mut ws = Workspace::new();
            group.bench_function(format!("{}/b{batch}", kind.label()), |b| {
                b.iter(|| run_decode(&model, batch, &mut ws));
            });
        }
    }
    group.finish();
}

fn bench_decode_packed(c: &mut Criterion) {
    // Packed vs unpacked weight path on the SIMD backends: the decode-shape speed tier's
    // model-level A/B. Both arms run the identical reused-workspace decode loop; only
    // `Model::set_weight_packing` differs (logit parity is pinned by
    // `tests/packed_parity.rs`). The tiny bench model keeps most of a step outside the
    // GEMMs, so the model-level delta here understates the kernel-level win that
    // `report_decode_packed` measures and asserts on.
    let mut group = c.benchmark_group("decode_packed");
    group.sample_size(15);
    for kind in [EngineKind::Simd, EngineKind::SimdParallel] {
        let mut config = ModelConfig::tiny_opt();
        config.engine = kind;
        config.max_seq_len = 128;
        let packed_model = Model::new(&config, 7).unwrap();
        let mut unpacked_model = Model::new(&config, 7).unwrap();
        unpacked_model.set_weight_packing(false);
        for batch in BATCH_SIZES {
            let mut ws = Workspace::new();
            group.bench_function(format!("{}/packed/b{batch}", kind.label()), |b| {
                b.iter(|| run_decode(&packed_model, batch, &mut ws));
            });
            let mut ws = Workspace::new();
            group.bench_function(format!("{}/unpacked/b{batch}", kind.label()), |b| {
                b.iter(|| run_decode(&unpacked_model, batch, &mut ws));
            });
        }
    }
    group.finish();
}

fn report_decode_packed(_c: &mut Criterion) {
    // Not a timing benchmark: measures the decode-shape speed tier's kernel-level contract
    // for the committed `decode_packed` section of BENCH_gemm.json and asserts the >=1.8x
    // packed-over-unpacked bar at batch-1 decode shapes. The workload is the per-layer
    // decode GEMM itself — a checksummed 1xK activation against a KxN weight on the SIMD
    // engine — so the ratio isolates the packed skinny kernel (fused expected checksum,
    // single pass over W) against the PR5 unpacked path (separate scalar expected pass)
    // without the model's quantize/norm/attention overheads diluting it. Measurements
    // interleave the two paths and keep the best rep, as in `report_decode_latency`.
    use rand::Rng;
    let engine = SimdEngine::new();
    let mut r = rng::seeded(0xBE4C);
    let (k, n) = (256, 256);
    let w = MatI8::from_fn(k, n, |_, _| r.gen_range(-128i16..=127) as i8);
    let pb = PackedMatI8::pack(&w);
    let a = MatI8::from_fn(1, k, |_, _| r.gen_range(-128i16..=127) as i8);

    let mut dest = ChecksummedGemm::from_parts(MatI32::zeros(0, 0), Vec::new(), Vec::new());
    let mut etw = Vec::new();
    let calls_per_rep = 4000;
    let reps = 9;
    let mut packed_s = f64::INFINITY;
    let mut unpacked_s = f64::INFINITY;
    // Warm up buffers and branch predictors on both arms.
    engine
        .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
        .unwrap();
    engine
        .gemm_i8_checksummed_into(&a, &w, &mut dest, &mut etw)
        .unwrap();
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls_per_rep {
            engine
                .gemm_i8_packed_checksummed_into(&a, &pb, &mut dest, &mut etw)
                .unwrap();
        }
        packed_s = packed_s.min(start.elapsed().as_secs_f64() / calls_per_rep as f64);
        let start = Instant::now();
        for _ in 0..calls_per_rep {
            engine
                .gemm_i8_checksummed_into(&a, &w, &mut dest, &mut etw)
                .unwrap();
        }
        unpacked_s = unpacked_s.min(start.elapsed().as_secs_f64() / calls_per_rep as f64);
    }
    let speedup = unpacked_s / packed_s;
    println!(
        "packed checksummed GEMV 1x{k}x{n} [{}]: packed {:.0} ns/call, unpacked {:.0} \
         ns/call, {speedup:.2}x",
        engine.tier().label(),
        packed_s * 1e9,
        unpacked_s * 1e9,
    );
    if engine.is_accelerated() {
        assert!(
            speedup >= 1.8,
            "packed decode-shape GEMV must deliver >=1.8x over the unpacked SIMD path \
             ({:.0} vs {:.0} ns/call)",
            packed_s * 1e9,
            unpacked_s * 1e9,
        );
    }
}

fn report_decode_latency(_c: &mut Criterion) {
    // Not a timing benchmark: measures tokens/s for the committed `decode_latency`
    // section of BENCH_gemm.json and asserts the tentpole's >=1.10x contract at batch 1.
    // Measurements interleave the two paths (so CPU-frequency drift hits both alike) and
    // each rep aggregates several loop runs to get above timer/scheduler noise; the best
    // rep per path is reported.
    let model = model();
    let reps = 9;
    let runs_per_rep = 8;
    let time_once = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        let mut tokens = 0;
        for _ in 0..runs_per_rep {
            tokens = f();
        }
        (start.elapsed().as_secs_f64() / runs_per_rep as f64, tokens)
    };
    for batch in BATCH_SIZES {
        let model = &model;
        let mut no_reuse = Workspace::without_reuse();
        let mut ws = Workspace::new();
        // Warm up caches and the long-lived workspace's pools.
        let tokens = run_decode(model, batch, &mut no_reuse);
        let reuse_tokens = run_decode(model, batch, &mut ws);
        assert_eq!(tokens, reuse_tokens, "both paths decode the same tokens");
        let mut alloc_s = f64::INFINITY;
        let mut reuse_s = f64::INFINITY;
        for _ in 0..reps {
            alloc_s = alloc_s.min(time_once(&mut || run_decode(model, batch, &mut no_reuse)).0);
            reuse_s = reuse_s.min(time_once(&mut || run_decode(model, batch, &mut ws)).0);
        }
        let alloc_tps = tokens as f64 / alloc_s;
        let reuse_tps = tokens as f64 / reuse_s;
        let speedup = reuse_tps / alloc_tps;
        println!(
            "decode batch {batch}: allocating {alloc_tps:.0} tok/s ({:.0} ns/token), \
             reused {reuse_tps:.0} tok/s ({:.0} ns/token), {speedup:.2}x",
            1e9 / alloc_tps,
            1e9 / reuse_tps,
        );
        if batch == 1 {
            assert!(
                speedup >= 1.10,
                "workspace reuse must deliver >=1.10x decode throughput at batch 1 \
                 ({reuse_tps:.0} vs {alloc_tps:.0} tok/s)"
            );
        }
    }
}

criterion_group!(
    benches,
    bench_decode,
    bench_decode_backends,
    bench_decode_packed,
    report_decode_packed,
    report_decode_latency
);
criterion_main!(benches);
