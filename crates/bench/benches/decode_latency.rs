//! Decode-loop latency with and without workspace reuse: the perf contract of the
//! workspace-planned forward path.
//!
//! Two ways to run the *identical* greedy decode loop on the reference backend:
//!
//! * **allocating** — a `Workspace::without_reuse()` arena, whose recycles drop buffers
//!   instead of pooling them: every GEMM of every layer allocates its quantized operands,
//!   accumulator, checksum vectors and conversion output fresh, exactly the pre-refactor
//!   per-GEMM allocation profile (same code path, so the comparison isolates reuse);
//! * **reused** — the same `_ws` entry points over one long-lived pooling `Workspace`,
//!   which is allocation-free after warmup (`tests/zero_alloc.rs` proves zero allocations
//!   per step).
//!
//! Both produce bit-identical tokens (`tests/workspace_parity.rs`); only wall-clock
//! changes. Measured tokens/s at batch 1/4/8 land in the criterion report and (via
//! `report_decode_latency`) in the committed `decode_latency` section of
//! `BENCH_gemm.json`; the ≥1.10× speedup for the reused path at batch 1 is asserted here
//! so a regression fails this bench's build.

use criterion::{criterion_group, criterion_main, Criterion};
use realm_llm::model::argmax_with_margin;
use realm_llm::{config::ModelConfig, model::Model, NoopHook};
use realm_tensor::{EngineKind, Workspace};
use std::time::Instant;

const DECODE_STEPS: usize = 24;
const BATCH_SIZES: [usize; 3] = [1, 4, 8];

/// A decode-bound micro model: GEMV-like decode shapes are where the fixed per-GEMM
/// scratch cost (quantize + accumulate + checksum + convert buffers) is the largest
/// fraction of a step, so this is the configuration the workspace contract is pinned on.
/// Larger hidden sizes shift time into the multiply kernels and the relative win shrinks
/// (the absolute per-token saving stays).
fn model() -> Model {
    let mut config = ModelConfig::tiny_opt();
    config.name = "tiny-opt-8".into();
    config.engine = EngineKind::Reference;
    config.hidden_size = 8;
    config.num_heads = 1;
    config.ffn_size = 16;
    config.vocab_size = 32;
    config.max_seq_len = 128;
    Model::new(&config, 7).unwrap()
}

fn prompts(batch: usize) -> Vec<Vec<u32>> {
    (0..batch)
        .map(|i| (0..2).map(|t| ((i * 7 + t * 3) % 30) as u32).collect())
        .collect()
}

/// One full decode loop over the provided scratch workspace; returns tokens generated.
/// The arena decides the arm: a long-lived pooling `Workspace` (reused, allocation-free
/// after its first loop) or a `Workspace::without_reuse()` (every checkout allocates).
fn run_decode(model: &Model, batch: usize, ws: &mut Workspace) -> usize {
    let (logits, mut cache) = model
        .prefill_batch_ws(&prompts(batch), &mut NoopHook, ws)
        .unwrap();
    let mut next: Vec<Option<u32>> = logits
        .iter()
        .map(|l| Some(argmax_with_margin(l.row(l.rows() - 1)).0))
        .collect();
    let mut tokens = 0;
    for _ in 0..DECODE_STEPS {
        let step_logits = model
            .decode_step_batch_ws(&next, &mut cache, &mut NoopHook, ws)
            .unwrap();
        for (slot, logits) in step_logits.into_iter().enumerate() {
            let logits = logits.expect("all sequences stay active");
            next[slot] = Some(argmax_with_margin(&logits).0);
            tokens += 1;
            ws.recycle_vec_f32(logits);
        }
        ws.reset();
    }
    tokens
}

fn bench_decode(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("decode_latency");
    group.sample_size(15);
    for batch in BATCH_SIZES {
        let mut no_reuse = Workspace::without_reuse();
        group.bench_function(format!("allocating/b{batch}"), |b| {
            b.iter(|| run_decode(&model, batch, &mut no_reuse));
        });
        // Long-lived like the serving engine's: pools stay warm across iterations.
        let mut ws = Workspace::new();
        group.bench_function(format!("reused/b{batch}"), |b| {
            b.iter(|| run_decode(&model, batch, &mut ws));
        });
    }
    group.finish();
}

fn bench_decode_backends(c: &mut Criterion) {
    // The same reused-workspace decode loop across GEMM backends: where the SIMD
    // microkernel lands on GEMV-like decode shapes (the per-GEMM fixed costs shrink its
    // relative win versus the 256³ headline, which is exactly why it is measured here).
    let mut group = c.benchmark_group("decode_backends");
    group.sample_size(15);
    for kind in [
        EngineKind::Reference,
        EngineKind::Blocked,
        EngineKind::Simd,
        EngineKind::SimdParallel,
    ] {
        let mut config = ModelConfig::tiny_opt();
        config.engine = kind;
        config.max_seq_len = 128;
        let model = Model::new(&config, 7).unwrap();
        for batch in [1usize, 8] {
            let mut ws = Workspace::new();
            group.bench_function(format!("{}/b{batch}", kind.label()), |b| {
                b.iter(|| run_decode(&model, batch, &mut ws));
            });
        }
    }
    group.finish();
}

fn report_decode_latency(_c: &mut Criterion) {
    // Not a timing benchmark: measures tokens/s for the committed `decode_latency`
    // section of BENCH_gemm.json and asserts the tentpole's >=1.10x contract at batch 1.
    // Measurements interleave the two paths (so CPU-frequency drift hits both alike) and
    // each rep aggregates several loop runs to get above timer/scheduler noise; the best
    // rep per path is reported.
    let model = model();
    let reps = 9;
    let runs_per_rep = 8;
    let time_once = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        let mut tokens = 0;
        for _ in 0..runs_per_rep {
            tokens = f();
        }
        (start.elapsed().as_secs_f64() / runs_per_rep as f64, tokens)
    };
    for batch in BATCH_SIZES {
        let model = &model;
        let mut no_reuse = Workspace::without_reuse();
        let mut ws = Workspace::new();
        // Warm up caches and the long-lived workspace's pools.
        let tokens = run_decode(model, batch, &mut no_reuse);
        let reuse_tokens = run_decode(model, batch, &mut ws);
        assert_eq!(tokens, reuse_tokens, "both paths decode the same tokens");
        let mut alloc_s = f64::INFINITY;
        let mut reuse_s = f64::INFINITY;
        for _ in 0..reps {
            alloc_s = alloc_s.min(time_once(&mut || run_decode(model, batch, &mut no_reuse)).0);
            reuse_s = reuse_s.min(time_once(&mut || run_decode(model, batch, &mut ws)).0);
        }
        let alloc_tps = tokens as f64 / alloc_s;
        let reuse_tps = tokens as f64 / reuse_s;
        let speedup = reuse_tps / alloc_tps;
        println!(
            "decode batch {batch}: allocating {alloc_tps:.0} tok/s ({:.0} ns/token), \
             reused {reuse_tps:.0} tok/s ({:.0} ns/token), {speedup:.2}x",
            1e9 / alloc_tps,
            1e9 / reuse_tps,
        );
        if batch == 1 {
            assert!(
                speedup >= 1.10,
                "workspace reuse must deliver >=1.10x decode throughput at batch 1 \
                 ({reuse_tps:.0} vs {alloc_tps:.0} tok/s)"
            );
        }
    }
}

criterion_group!(
    benches,
    bench_decode,
    bench_decode_backends,
    report_decode_latency
);
criterion_main!(benches);
